package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTraceRecordGolden pins the trace wire format byte for byte: a
// scripted emission under a fixed clock must reproduce the checked-in
// JSONL exactly. Identity-less events must stay on the pre-fleet schema
// (no trace/span/node keys), and identity-carrying ones must serialize
// their fields in the pinned order. Run with -update to regenerate
// after an intentional schema change.
func TestTraceRecordGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	at := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tr.SetClock(func() time.Time {
		at = at.Add(250 * time.Millisecond)
		return at
	})

	// Pre-fleet schema: no identity, no span/trace keys on point events.
	tr.Event("quarantine", "unit", 3, "reason", "panic")

	// Fleet schema: identity stamped, deterministic node-prefixed span
	// IDs, parentage across EmitEvent (a shipped worker span).
	tr.SetIdentity("0123456789abcdef", "coordinator")
	run := tr.StartSpan("fleet_run", "units", 2)
	run.Event("lease", "cell", 0, "worker", "w0")
	child := run.StartChild("sweep")
	child.End("expired", 0)
	start := time.Date(2026, 1, 2, 3, 4, 6, 0, time.UTC)
	tr.EmitEvent(TraceEvent{
		Time: start.Add(90 * time.Millisecond), TraceID: "0123456789abcdef",
		SpanID: "w0:1", Parent: run.ID(), Node: "w0", Kind: "span", Name: "cell",
		Start: &start, DurMS: 90, Attrs: map[string]any{"cell": 0, "pairs": 10},
	})
	run.End("completed", 2)

	got := buf.Bytes()
	golden := filepath.Join("testdata", "trace_golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace bytes drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
