package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// ReportSchema identifies the report wire format. It is shared by
// `rsafactor -report`, `gcdbench -json` and the checked-in BENCH_*.json
// perf-trajectory artifacts, so one consumer reads all three.
const ReportSchema = "bulkgcd.bench.v1"

// Report is the machine-readable end-of-run artifact: what ran, on
// what, the engine's own result summary, the rendered experiment tables
// (gcdbench) and the full metric snapshot.
type Report struct {
	// Schema is always ReportSchema.
	Schema string `json:"schema"`
	// Tool is the producing command ("rsafactor", "gcdbench", ...).
	Tool string `json:"tool"`
	// Start and End bound the run; ElapsedSeconds is their difference.
	Start          time.Time `json:"start"`
	End            time.Time `json:"end"`
	ElapsedSeconds float64   `json:"elapsed_seconds"`
	// Host describes the machine, for comparing BENCH artifacts.
	Host HostInfo `json:"host"`
	// Params records the knobs that shaped the run (flag values).
	Params map[string]any `json:"params,omitempty"`
	// Summary is the engine's own result accounting — for rsafactor the
	// exact numbers of the attack Report (pairs scanned, findings,
	// quarantined pairs), so the artifact can be reconciled against the
	// run's printed output.
	Summary map[string]any `json:"summary,omitempty"`
	// Tables carries gcdbench experiment results (Table IV/V and
	// friends) in machine-readable form.
	Tables map[string]any `json:"tables,omitempty"`
	// Metrics is the final snapshot of the run's registry.
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// HostInfo pins the environment a BENCH artifact was measured on.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// NewReport starts a report for tool with the host filled in and Start
// stamped now.
func NewReport(tool string) *Report {
	return &Report{
		Schema: ReportSchema,
		Tool:   tool,
		Start:  time.Now(),
		Host: HostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Params:  map[string]any{},
		Summary: map[string]any{},
		Tables:  map[string]any{},
	}
}

// Finish stamps End/ElapsedSeconds and attaches the registry snapshot
// (nil reg attaches nothing).
func (r *Report) Finish(reg *Registry) {
	r.End = time.Now()
	r.ElapsedSeconds = r.End.Sub(r.Start).Seconds()
	if reg != nil {
		r.Metrics = reg.Snapshot()
	}
}

// WriteFile writes the report as indented JSON, atomically enough for a
// single consumer (temp file + rename would be overkill for an
// end-of-run artifact written once).
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
