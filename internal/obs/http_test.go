package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestStatusServer exercises the three endpoints end to end over a real
// listener, the way a `curl :addr/metrics` against a live scan does.
func TestStatusServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bulk_pairs_total").Add(7)
	reg.Histogram("bulk_block_seconds", DurationBuckets()).Observe(0.001)

	s, err := ServeStatus("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body, _ := get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	var health struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if health.Status != "ok" || health.Uptime < 0 {
		t.Errorf("healthz = %+v", health)
	}

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	for _, needle := range []string{
		"# TYPE bulk_pairs_total counter",
		"bulk_pairs_total 7",
		"bulk_block_seconds_bucket{le=\"+Inf\"} 1",
		"bulk_block_seconds_count 1",
	} {
		if !strings.Contains(body, needle) {
			t.Errorf("metrics missing %q:\n%s", needle, body)
		}
	}

	// Metric updates made while the server runs are visible on the next
	// scrape — the live-scan property.
	reg.Counter("bulk_pairs_total").Add(5)
	_, body, _ = get(t, base+"/metrics")
	if !strings.Contains(body, "bulk_pairs_total 12") {
		t.Errorf("live update not visible:\n%s", body)
	}

	for _, path := range []string{"/metrics?format=json", "/debug/vars"} {
		code, body, hdr = get(t, base+path)
		if code != http.StatusOK {
			t.Fatalf("%s = %d", path, code)
		}
		if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s content type = %q", path, ct)
		}
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("%s body: %v", path, err)
		}
		if snap.Counters["bulk_pairs_total"] != 12 {
			t.Errorf("%s counter = %d", path, snap.Counters["bulk_pairs_total"])
		}
	}

	code, body, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Errorf("pprof cmdline = %d %q", code, body)
	}
}

// TestStatusServerReadyz: ServeStatus starts ready (back-compat); a
// server built with explicit options starts not-ready until flipped,
// and goes not-ready again the instant Shutdown begins.
func TestStatusServerReadyz(t *testing.T) {
	s, err := ServeStatus("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _, _ := get(t, "http://"+s.Addr()+"/readyz"); code != http.StatusOK {
		t.Fatalf("default server /readyz = %d", code)
	}

	mounted := false
	opts := StatusOptions{
		Registry: NewRegistry(),
		Handlers: map[string]http.Handler{
			"/custom": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				mounted = true
				w.WriteHeader(http.StatusNoContent)
			}),
		},
	}
	c, err := ServeStatusOptions("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base := "http://" + c.Addr()
	if code, body, _ := get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady = %d %q", code, body)
	}
	if code, _, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatal("not-ready must still be live")
	}
	c.SetReady(true)
	if code, _, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatal("/readyz after SetReady not 200")
	}
	if code, _, _ := get(t, base+"/custom"); code != http.StatusNoContent || !mounted {
		t.Fatal("custom handler not mounted")
	}
}

// TestStatusServerSnapshotOverride: the Snapshot option replaces the
// registry as the scrape source — the coordinator's merged fleet view.
func TestStatusServerSnapshotOverride(t *testing.T) {
	own := NewRegistry()
	own.Counter("fleet_cells_completed_total").Add(3)
	worker := NewRegistry()
	worker.Counter("bulk_pairs_total").Add(9)
	s, err := ServeStatusOptions("127.0.0.1:0", StatusOptions{
		Registry: own,
		Ready:    true,
		Snapshot: func() *Snapshot {
			snap := own.Snapshot()
			_ = snap.Merge(worker.Snapshot())
			return snap
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, body, _ := get(t, "http://"+s.Addr()+"/metrics")
	for _, needle := range []string{"fleet_cells_completed_total 3", "bulk_pairs_total 9"} {
		if !strings.Contains(body, needle) {
			t.Errorf("merged metrics missing %q:\n%s", needle, body)
		}
	}
}

// TestStatusServerShutdownDrains: a request in flight when Shutdown is
// called completes instead of being dropped, and the listener refuses
// new connections afterwards.
func TestStatusServerShutdownDrains(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	s, err := ServeStatusOptions("127.0.0.1:0", StatusOptions{
		Ready: true,
		Handlers: map[string]http.Handler{
			"/slow": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				close(entered)
				<-release
				w.Write([]byte("drained"))
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	type result struct {
		code int
		body string
	}
	got := make(chan result, 1)
	go func() {
		code, body, _ := get(t, base+"/slow")
		got <- result{code, body}
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	// Shutdown is in progress: the in-flight handler still holds it open.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before drain: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-got
	if r.code != http.StatusOK || r.body != "drained" {
		t.Fatalf("in-flight request dropped: %d %q", r.code, r.body)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}
