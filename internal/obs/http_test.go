package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestStatusServer exercises the three endpoints end to end over a real
// listener, the way a `curl :addr/metrics` against a live scan does.
func TestStatusServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bulk_pairs_total").Add(7)
	reg.Histogram("bulk_block_seconds", DurationBuckets()).Observe(0.001)

	s, err := ServeStatus("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body, _ := get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	var health struct {
		Status string  `json:"status"`
		Uptime float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if health.Status != "ok" || health.Uptime < 0 {
		t.Errorf("healthz = %+v", health)
	}

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	for _, needle := range []string{
		"# TYPE bulk_pairs_total counter",
		"bulk_pairs_total 7",
		"bulk_block_seconds_bucket{le=\"+Inf\"} 1",
		"bulk_block_seconds_count 1",
	} {
		if !strings.Contains(body, needle) {
			t.Errorf("metrics missing %q:\n%s", needle, body)
		}
	}

	// Metric updates made while the server runs are visible on the next
	// scrape — the live-scan property.
	reg.Counter("bulk_pairs_total").Add(5)
	_, body, _ = get(t, base+"/metrics")
	if !strings.Contains(body, "bulk_pairs_total 12") {
		t.Errorf("live update not visible:\n%s", body)
	}

	for _, path := range []string{"/metrics?format=json", "/debug/vars"} {
		code, body, hdr = get(t, base+path)
		if code != http.StatusOK {
			t.Fatalf("%s = %d", path, code)
		}
		if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s content type = %q", path, ct)
		}
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("%s body: %v", path, err)
		}
		if snap.Counters["bulk_pairs_total"] != 12 {
			t.Errorf("%s counter = %d", path, snap.Counters["bulk_pairs_total"])
		}
	}

	code, body, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Errorf("pprof cmdline = %d %q", code, body)
	}
}
