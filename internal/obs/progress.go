package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressFunc is the engines' progress callback shape: done units
// completed out of total.
type ProgressFunc func(done, total int64)

// SerializeProgress wraps fn so that, no matter how many workers report
// concurrently, fn observes a serialized, strictly monotonic stream:
// calls are mutex-ordered and any update whose done value does not
// exceed the best already delivered is dropped. This is the concurrency
// contract bulk.Config.Progress and batchgcd.Config.Progress promise
// their callers; the engines route every callback through here, so user
// callbacks need no locking of their own.
//
// A nil fn returns nil, keeping the no-callback hot path free of even
// the wrapper call.
func SerializeProgress(fn ProgressFunc) ProgressFunc {
	if fn == nil {
		return nil
	}
	var mu sync.Mutex
	last := int64(-1)
	return func(done, total int64) {
		mu.Lock()
		defer mu.Unlock()
		if done <= last {
			return
		}
		last = done
		fn(done, total)
	}
}

// ProgressPrinter is a ProgressFunc sink that renders a periodic
// carriage-return status line with completion percentage, current rate
// and ETA — the live view of a long scan. It throttles itself to one
// line per Interval, plus a final line when done reaches total.
//
// Use it directly as an engine Progress callback (the engines serialize
// delivery), or Tee it with another callback.
type ProgressPrinter struct {
	w        io.Writer
	unit     string
	interval time.Duration

	mu       sync.Mutex
	start    time.Time
	lastOut  time.Time
	started  bool
	finished bool
	lines    int

	// now is the clock, replaceable in tests.
	now func() time.Time
}

// NewProgressPrinter returns a printer emitting to w at most once per
// interval, labeling counts with unit ("pairs", "tree ops"). An
// interval of 0 prints on every update (used by tests).
func NewProgressPrinter(w io.Writer, unit string, interval time.Duration) *ProgressPrinter {
	return &ProgressPrinter{w: w, unit: unit, interval: interval, now: time.Now}
}

// Update is the ProgressFunc; it renders at most one line per interval.
func (p *ProgressPrinter) Update(done, total int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	if !p.started {
		p.started = true
		p.start = now
	}
	final := total > 0 && done >= total
	if !final && p.interval > 0 && now.Sub(p.lastOut) < p.interval {
		return
	}
	p.lastOut = now
	p.lines++

	elapsed := now.Sub(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	eta := "?"
	if rate > 0 && total > done {
		eta = (time.Duration(float64(total-done) / rate * float64(time.Second))).Round(time.Second).String()
	} else if final {
		eta = "0s"
	}
	fmt.Fprintf(p.w, "\rprogress: %d/%d %s (%.1f%%) %.1f %s/s eta %s",
		done, total, p.unit, pct, rate, p.unit, eta)
	if final {
		fmt.Fprintln(p.w)
		p.finished = true
	}
}

// Lines reports how many status lines were emitted (for tests and for
// deciding whether a trailing newline is needed after interruption).
func (p *ProgressPrinter) Lines() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lines
}

// Finish terminates the status line after an interrupted run (a
// completed run already printed its newline, so Finish is a no-op then).
func (p *ProgressPrinter) Finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lines > 0 && !p.finished {
		fmt.Fprintln(p.w)
		p.finished = true
	}
}

// Tee fans one progress stream out to several callbacks (nils are
// skipped; nil result when all are nil).
func Tee(fns ...ProgressFunc) ProgressFunc {
	live := make([]ProgressFunc, 0, len(fns))
	for _, fn := range fns {
		if fn != nil {
			live = append(live, fn)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(done, total int64) {
		for _, fn := range live {
			fn(done, total)
		}
	}
}
