package obs

import "sync"

// Collector is an in-memory trace Sink: it buffers every event a
// Tracer emits until Drain hands them off. Fleet workers trace each
// cell into a Collector and ship the drained batch on the completing
// RPC, so the coordinator receives a cell's whole event stream
// atomically — either the cell completes and its spans arrive, or it
// doesn't and they never pollute the merged trace.
//
// A nil Collector discards events, mirroring the nil-Tracer contract.
type Collector struct {
	mu  sync.Mutex
	evs []TraceEvent
}

// EmitTrace implements Sink.
func (c *Collector) EmitTrace(ev TraceEvent) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

// Drain returns the buffered events in emission order and resets the
// buffer. Returns nil when empty.
func (c *Collector) Drain() []TraceEvent {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	evs := c.evs
	c.evs = nil
	return evs
}

// Len reports the number of buffered events.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evs)
}
