package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer drives every metric type from many goroutines;
// under -race this is the data-race proof, and the final values prove
// no update was lost.
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.Counter("hammer_total")
			gauge := reg.Gauge("hammer_gauge")
			h := reg.Histogram("hammer_hist", LinearBuckets(100, 100, 10))
			for i := 0; i < perG; i++ {
				c.Inc()
				gauge.Add(1)
				h.Observe(float64(i % 1000))
			}
		}(g)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counters["hammer_total"]; got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Gauges["hammer_gauge"]; got != goroutines*perG {
		t.Errorf("gauge = %g, want %d", got, goroutines*perG)
	}
	h := snap.Histograms["hammer_hist"]
	if h.Count != goroutines*perG {
		t.Errorf("hist count = %d, want %d", h.Count, goroutines*perG)
	}
	var bucketSum int64
	for _, n := range h.Buckets {
		bucketSum += n
	}
	if bucketSum != h.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, h.Count)
	}
	// Sum of 0..999 repeated: exact float arithmetic (all integers).
	wantSum := float64(goroutines) * float64(perG/1000) * (999 * 1000 / 2)
	if h.Sum != wantSum {
		t.Errorf("hist sum = %g, want %g", h.Sum, wantSum)
	}
}

// TestSnapshotMergeEquivalence: sharding updates over two registries
// and merging their snapshots must equal one registry receiving all
// updates — the property the bulk engines rely on if they ever shard
// per worker.
func TestSnapshotMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shared := NewRegistry()
	shards := []*Registry{NewRegistry(), NewRegistry()}
	bounds := ExpBuckets(1, 2, 8)

	for i := 0; i < 10000; i++ {
		shard := shards[i%2]
		v := rng.Float64() * 300
		n := int64(rng.Intn(5) + 1)
		for _, r := range []*Registry{shared, shard} {
			r.Counter("ops_total").Add(n)
			r.Histogram("latency", bounds).Observe(v)
		}
		shared.Gauge("level").Set(v)
		shard.Gauge("level").Set(v)
	}

	merged := shards[0].Snapshot()
	if err := merged.Merge(shards[1].Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := shared.Snapshot()

	if merged.Counters["ops_total"] != want.Counters["ops_total"] {
		t.Errorf("merged counter %d != shared %d", merged.Counters["ops_total"], want.Counters["ops_total"])
	}
	mh, wh := merged.Histograms["latency"], want.Histograms["latency"]
	if mh.Count != wh.Count {
		t.Errorf("merged count %d != %d", mh.Count, wh.Count)
	}
	for i := range mh.Buckets {
		if mh.Buckets[i] != wh.Buckets[i] {
			t.Errorf("bucket %d: merged %d != shared %d", i, mh.Buckets[i], wh.Buckets[i])
		}
	}
	if math.Abs(mh.Sum-wh.Sum) > 1e-6*math.Abs(wh.Sum) {
		t.Errorf("merged sum %g != shared %g", mh.Sum, wh.Sum)
	}
	// The last gauge write went to shards[1], which Merge takes.
	if merged.Gauges["level"] != want.Gauges["level"] {
		t.Errorf("merged gauge %g != shared %g", merged.Gauges["level"], want.Gauges["level"])
	}

	// Mismatched bucket layouts must refuse to merge.
	bad := NewRegistry()
	bad.Histogram("latency", LinearBuckets(1, 1, 3)).Observe(2)
	if err := merged.Merge(bad.Snapshot()); err == nil {
		t.Error("merge with different bounds accepted")
	}
}

// TestPrometheusGolden pins the exposition format byte for byte.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bulk_pairs_total").Add(42)
	reg.Gauge("bulk_workers").Set(4)
	h := reg.Histogram("block_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE bulk_pairs_total counter
bulk_pairs_total 42
# TYPE bulk_workers gauge
bulk_workers 4
# TYPE block_seconds histogram
block_seconds_bucket{le="0.1"} 1
block_seconds_bucket{le="1"} 3
block_seconds_bucket{le="10"} 3
block_seconds_bucket{le="+Inf"} 4
block_seconds_sum 100.05
block_seconds_count 4
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramQuantile checks the interpolated estimate lands in the
// right bucket.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // 10..100
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.snapshot()
	if q := s.Quantile(0.5); q < 40 || q > 60 {
		t.Errorf("p50 = %g, want ~50", q)
	}
	if q := s.Quantile(0.95); q < 85 || q > 100 {
		t.Errorf("p95 = %g, want ~95", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("p100 = %g, want 100", q)
	}
	if got := s.Mean(); got != 50.5 {
		t.Errorf("mean = %g, want 50.5", got)
	}
}

// TestNilSafety: every operation must be a no-op on nil receivers so
// the engines can instrument unconditionally.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("x").Set(1)
	reg.Histogram("x", nil).Observe(1)
	if snap := reg.Snapshot(); len(snap.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var tr *Tracer
	tr.Event("nothing")
	tr.StartSpan("nothing").End("k", "v")
	if fn := SerializeProgress(nil); fn != nil {
		t.Error("SerializeProgress(nil) != nil")
	}
	if fn := Tee(nil, nil); fn != nil {
		t.Error("Tee(nil, nil) != nil")
	}
}

// TestSerializeProgressMonotonic: concurrent out-of-order delivery in,
// strictly increasing serialized delivery out.
func TestSerializeProgressMonotonic(t *testing.T) {
	var mu sync.Mutex
	var seen []int64
	fn := SerializeProgress(func(done, total int64) {
		mu.Lock()
		seen = append(seen, done)
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				fn(i*8+int64(g), 8000)
			}
		}(g)
	}
	wg.Wait()
	if len(seen) == 0 {
		t.Fatal("no deliveries")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("delivery not monotonic: %d after %d", seen[i], seen[i-1])
		}
	}
	if last := seen[len(seen)-1]; last != 7999 {
		t.Errorf("final done = %d, want 7999", last)
	}
}

// TestTracerJSONL checks the wire format with a deterministic clock.
func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	tick := 0
	tr.now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 100 * time.Millisecond)
	}

	tr.Event("quarantine", "index", 3, "reason", "even")
	sp := tr.StartSpan("block", "block", 7)
	sp.End("pairs", 2016)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var ev TraceEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "event" || ev.Name != "quarantine" || ev.Attrs["reason"] != "even" {
		t.Errorf("bad event: %+v", ev)
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "span" || ev.Name != "block" {
		t.Errorf("bad span: %+v", ev)
	}
	if ev.DurMS != 100 {
		t.Errorf("span duration = %v ms, want 100", ev.DurMS)
	}
	if ev.Attrs["block"] != float64(7) || ev.Attrs["pairs"] != float64(2016) {
		t.Errorf("span attrs = %v", ev.Attrs)
	}
}

// TestProgressPrinterETA: the status line carries count, percentage,
// rate and a finite ETA, and the final update appends a newline.
func TestProgressPrinterETA(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressPrinter(&buf, "pairs", 0)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	times := []time.Time{base, base.Add(10 * time.Second), base.Add(20 * time.Second)}
	i := 0
	p.now = func() time.Time { v := times[i]; i++; return v }

	p.Update(0, 1000)
	p.Update(500, 1000) // 50 pairs/s over 10s -> eta 10s
	p.Update(1000, 1000)

	out := buf.String()
	if !strings.Contains(out, "500/1000 pairs (50.0%) 50.0 pairs/s eta 10s") {
		t.Errorf("mid-run line wrong:\n%q", out)
	}
	if !strings.Contains(out, "1000/1000 pairs (100.0%)") || !strings.HasSuffix(out, "\n") {
		t.Errorf("final line wrong:\n%q", out)
	}
	if p.Lines() != 3 {
		t.Errorf("lines = %d, want 3", p.Lines())
	}
}

// TestProgressPrinterThrottle: with a long interval only the first and
// final updates print.
func TestProgressPrinterThrottle(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressPrinter(&buf, "ops", time.Hour)
	for i := int64(1); i <= 100; i++ {
		p.Update(i, 100)
	}
	if n := p.Lines(); n != 2 {
		t.Errorf("lines = %d, want 2 (first + final):\n%q", n, buf.String())
	}
}

// TestReportRoundTrip: the artifact schema survives JSON round trips
// with metrics attached.
func TestReportRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bulk_pairs_total").Add(120)
	rep := NewReport("rsafactor")
	rep.Params["alg"] = "approximate"
	rep.Summary["pairs"] = int64(120)
	rep.Finish(reg)

	path := t.TempDir() + "/report.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var back Report
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || back.Tool != "rsafactor" {
		t.Errorf("header = %q %q", back.Schema, back.Tool)
	}
	if back.Metrics == nil || back.Metrics.Counters["bulk_pairs_total"] != 120 {
		t.Errorf("metrics lost: %+v", back.Metrics)
	}
	if back.Host.GOARCH == "" || back.ElapsedSeconds < 0 {
		t.Errorf("host/timing missing: %+v", back.Host)
	}
}
