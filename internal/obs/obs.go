// Package obs is the run-wide observability layer of the repository: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms, safe for concurrent workers), a span-style
// run tracer emitting structured JSONL events, serialized progress
// reporting with rate/ETA, a status HTTP server (/healthz, /metrics,
// pprof) and the machine-readable end-of-run report whose schema
// doubles as the repository's BENCH_*.json format.
//
// The package is modeled on internal/stats — small accumulators feeding
// the paper's tables — but where stats.Acc is a single-goroutine
// accumulator for the experiment harness, obs instruments the
// production engines: every operation is lock-free on the hot path and
// every type tolerates a nil receiver, so engine code can be
// instrumented unconditionally and pays (almost) nothing when metrics
// are disabled.
//
// Metric naming follows the Prometheus conventions: `<subsystem>_<name>`
// with a `_total` suffix on counters and base-unit (seconds) histograms.
// DESIGN.md section 5c lists every metric the engines export.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil Counter ignores updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters are
// monotonic by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 gauge. The zero value is ready to use; a
// nil Gauge ignores updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (compare-and-swap loop; gauges are updated at
// block granularity, so contention is negligible).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic bucket counts and an
// exact running sum, mirroring the Prometheus histogram model: bucket i
// counts observations v <= Bounds[i], and one implicit +Inf bucket
// catches the rest. A nil Histogram ignores observations.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds. It panics on invalid bounds (metric construction is
// programmer error, not runtime input).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing: %v", bounds))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds given nanoseconds, the
// unit all engine latency histograms use.
func (h *Histogram) ObserveDuration(nanos int64) {
	h.Observe(float64(nanos) / 1e9)
}

// snapshot copies the histogram's state. The copy is not atomic across
// buckets — concurrent observations may straddle it — but every
// completed Observe before the call is included, which is all the
// exposition endpoints need.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: make([]int64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.refreshQuantiles()
	return s
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the default latency scale for the engine
// histograms: 10us .. ~84s in x2.5 steps, wide enough for a 4096-bit
// block on one worker and fine enough to see per-block jitter.
func DurationBuckets() []float64 { return ExpBuckets(10e-6, 2.5, 18) }

// IterationBuckets is the default scale for per-GCD iteration-count
// histograms: Table IV means range from ~360 (512-bit, early-terminate)
// to ~5900 (4096-bit Original), so 16..131072 in x2 steps covers every
// algorithm and size with headroom.
func IterationBuckets() []float64 { return ExpBuckets(16, 2, 14) }

// Registry is a concurrency-safe collection of named metrics. Metrics
// are created on first use and live for the registry's lifetime. A nil
// Registry hands out nil metrics, which ignore updates — engine code
// can therefore instrument unconditionally.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds and return the
// existing histogram).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot captures the registry's current state for exposition,
// merging and reports. A nil registry snapshots empty.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}
