package bulk

import (
	"fmt"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/umm"
)

// This file bridges the word-level GCD engines to the UMM simulator: it
// replays recorded iteration shapes (gcd.IterShape) as the exact global-
// memory address stream of Section IV - read x_i / read y_i / write x_i
// from the least significant word, with the extra Y pass on the beta > 0
// path - in the column-wise arrangement of Figure 3. Swaps flip which of
// the two per-thread arenas plays the role of X, exactly like the pointer
// exchange in Figure 1; threads that have swapped an uneven number of
// times therefore touch different arenas, which is one of the two sources
// of non-coalesced access in the semi-oblivious bulk execution (the other
// is divergence of operand lengths and iteration counts).

// ShapeProgram converts one thread's iteration shapes into its UMM address
// stream. p is the bulk width (threads sharing the column-wise arena), j
// the thread index, and words the per-operand arena size in words.
func ShapeProgram(shapes []gcd.IterShape, p, j, words int) umm.Program {
	// Arena 0 occupies logical rows [0, words); arena 1 rows [words, 2*words).
	// Column-wise: row i of thread j lives at address i*p + j.
	addr := func(arena, i int) int64 {
		return umm.ColumnWise(0, p, arena*words+i, j)
	}
	var addrs []int64
	cur := 0 // arena currently holding X
	for _, sh := range shapes {
		lx, ly := int(sh.LX), int(sh.LY)
		switch sh.Branch {
		case gcd.BranchHalveX:
			for i := 0; i < lx; i++ {
				addrs = append(addrs, addr(cur, i), addr(cur, i))
			}
		case gcd.BranchHalveY:
			for i := 0; i < ly; i++ {
				addrs = append(addrs, addr(1-cur, i), addr(1-cur, i))
			}
		default: // BranchFull: single fused pass over X and Y
			for i := 0; i < lx; i++ {
				addrs = append(addrs, addr(cur, i))
				if i < ly {
					addrs = append(addrs, addr(1-cur, i))
				}
				addrs = append(addrs, addr(cur, i))
			}
			if sh.ExtraY {
				for i := 0; i < ly; i++ {
					addrs = append(addrs, addr(1-cur, i))
				}
			}
		}
		if sh.Swapped {
			cur = 1 - cur
		}
	}
	return &umm.SliceProgram{Addrs: addrs}
}

// SimResult combines the UMM measurement with the GCD statistics of the
// simulated threads.
type SimResult struct {
	// UMM is the simulator's accounting for the bulk execution.
	UMM umm.RunStats
	// Stats aggregates the simulated threads' GCD statistics.
	Stats gcd.Stats
	// Threads is the bulk width p.
	Threads int
	// TimePerGCD is UMM.Time divided by the number of thread programs:
	// simulated time units per GCD at full occupancy.
	TimePerGCD float64
}

// Simulate runs one GCD per thread on the UMM: thread j computes
// gcd(xs[j], ys[j]) with the given algorithm, and the recorded word-level
// access stream of all threads is replayed on machine m in column-wise
// layout. This is the repository's substitute for running the CUDA kernel:
// it measures the coalesced fraction and the time-unit cost that Section VI
// reasons about.
func Simulate(m *umm.Machine, alg gcd.Algorithm, xs, ys []*mpnat.Nat, early bool) (*SimResult, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("bulk: need equal non-empty operand slices, got %d and %d", len(xs), len(ys))
	}
	p := len(xs)
	maxBits := 0
	for i := range xs {
		if err := gcd.Validate(xs[i], ys[i]); err != nil {
			return nil, fmt.Errorf("bulk: thread %d: %w", i, err)
		}
		for _, v := range []*mpnat.Nat{xs[i], ys[i]} {
			if b := v.BitLen(); b > maxBits {
				maxBits = b
			}
		}
	}
	words := (maxBits + 31) / 32

	res := &SimResult{Threads: p}
	progs := make([]umm.Program, p)
	scratch := gcd.NewScratch(maxBits)
	for j := 0; j < p; j++ {
		opt := gcd.Options{RecordShapes: true}
		if early {
			s := xs[j].BitLen()
			if yb := ys[j].BitLen(); yb < s {
				s = yb
			}
			opt.EarlyBits = s / 2
		}
		_, st := scratch.Compute(alg, xs[j], ys[j], opt)
		progs[j] = ShapeProgram(st.Shapes, p, j, words)
		st.Shapes = nil
		res.Stats.Add(&st)
	}
	res.UMM = m.Run(progs)
	res.TimePerGCD = float64(res.UMM.Time) / float64(p)
	return res, nil
}
