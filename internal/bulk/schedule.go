// Package bulk implements the bulk execution of GCD computations over many
// RSA moduli: the all-pairs block decomposition of Section VI, a
// host-parallel executor that plays the role of the paper's GPU (one
// goroutine pool standing in for the streaming multiprocessors, one
// gcd.Scratch per worker so the hot loop never allocates), and the bridge
// that replays recorded iteration shapes on the UMM simulator to measure
// coalescing and simulated GPU time.
package bulk

import "fmt"

// Block identifies one CUDA block of the paper's decomposition: the m
// moduli are partitioned into m/r groups of r; block (I, J) computes the
// GCDs between group I and group J using r threads. Blocks with I > J
// terminate immediately; block (I, I) computes the triangular half.
type Block struct {
	I, J int
}

// Schedule is the all-pairs decomposition for m moduli in groups of r.
type Schedule struct {
	M, R   int
	Groups int // number of groups: ceil(m/r)
}

// NewSchedule validates and builds a schedule. r must be in [1, m].
func NewSchedule(m, r int) (*Schedule, error) {
	if m < 2 {
		return nil, fmt.Errorf("bulk: need at least 2 moduli, got %d", m)
	}
	if r < 1 || r > m {
		return nil, fmt.Errorf("bulk: group size %d out of range [1,%d]", r, m)
	}
	return &Schedule{M: m, R: r, Groups: (m + r - 1) / r}, nil
}

// Blocks returns the non-idle blocks (I <= J), the work the paper's
// (m/r)^2 CUDA grid actually performs.
func (s *Schedule) Blocks() []Block {
	var out []Block
	for i := 0; i < s.Groups; i++ {
		for j := i; j < s.Groups; j++ {
			out = append(out, Block{I: i, J: j})
		}
	}
	return out
}

// index returns the modulus index of member k of group g, or -1 when the
// slot is beyond m (the final group may be partial).
func (s *Schedule) index(g, k int) int {
	idx := g*s.R + k
	if idx >= s.M {
		return -1
	}
	return idx
}

// BlockPairs invokes fn for every pair (a, b) of modulus indices computed
// by block blk, in the exact order of the paper's per-thread loops:
// thread k of block (I, J) computes gcd(n_{I,k}, n_{J,u}) for u = 0..r-1
// when I < J, and for u = k+1..r-1 when I = J.
func (s *Schedule) BlockPairs(blk Block, fn func(a, b int)) {
	switch {
	case blk.I > blk.J:
		return // idle block
	case blk.I < blk.J:
		for k := 0; k < s.R; k++ {
			a := s.index(blk.I, k)
			if a < 0 {
				break
			}
			for u := 0; u < s.R; u++ {
				b := s.index(blk.J, u)
				if b < 0 {
					break
				}
				fn(a, b)
			}
		}
	default:
		for k := 0; k < s.R; k++ {
			a := s.index(blk.I, k)
			if a < 0 {
				break
			}
			for u := k + 1; u < s.R; u++ {
				b := s.index(blk.I, u)
				if b < 0 {
					break
				}
				fn(a, b)
			}
		}
	}
}

// TotalPairs returns m(m-1)/2, the number of GCDs the schedule performs.
func (s *Schedule) TotalPairs() int64 {
	m := int64(s.M)
	return m * (m - 1) / 2
}
