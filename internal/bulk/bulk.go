package bulk

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

// Factor is one non-trivial GCD found by the all-pairs computation.
type Factor struct {
	// I, J are the indices of the moduli sharing the factor, I < J.
	I, J int
	// P is gcd(n_I, n_J) > 1.
	P *mpnat.Nat
}

// Config controls an all-pairs bulk run.
type Config struct {
	// Algorithm selects the GCD algorithm (the paper's GPU kernels use
	// Approximate; Binary and FastBinary are the baselines of Table V).
	Algorithm gcd.Algorithm

	// Early enables the early-terminate variant with threshold s/2, where
	// s is the pair's smaller modulus size. This is the mode the paper
	// recommends for RSA moduli (Section V).
	Early bool

	// Workers is the goroutine pool size; 0 means GOMAXPROCS.
	Workers int

	// GroupSize is the paper's r (threads per CUDA block, 64 there);
	// 0 means 64. It only affects work partitioning, not results.
	GroupSize int

	// Progress, when non-nil, receives the number of completed pairs at
	// block granularity. It must be safe for concurrent use.
	Progress func(done, total int64)
}

// Result reports an all-pairs bulk run.
type Result struct {
	// Factors lists every pair with gcd > 1, ordered by (I, J).
	Factors []Factor
	// Stats aggregates the per-GCD statistics over all pairs.
	Stats gcd.Stats
	// Pairs is the number of GCDs computed: m(m-1)/2.
	Pairs int64
	// Elapsed is the wall-clock time of the parallel computation.
	Elapsed time.Duration
	// Workers is the pool size actually used.
	Workers int
}

// PairsPerSecond returns the aggregate GCD throughput.
func (r *Result) PairsPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Pairs) / r.Elapsed.Seconds()
}

// AllPairs computes the GCD of every pair of moduli with the block
// decomposition of Section VI executed on a host worker pool. All moduli
// must be odd and positive (RSA moduli are).
func AllPairs(moduli []*mpnat.Nat, cfg Config) (*Result, error) {
	m := len(moduli)
	if m < 2 {
		return nil, fmt.Errorf("bulk: need at least 2 moduli, got %d", m)
	}
	maxBits := 0
	for i, n := range moduli {
		if n == nil || n.IsZero() {
			return nil, fmt.Errorf("bulk: modulus %d is zero", i)
		}
		if n.IsEven() {
			return nil, fmt.Errorf("bulk: modulus %d is even", i)
		}
		if b := n.BitLen(); b > maxBits {
			maxBits = b
		}
	}
	r := cfg.GroupSize
	if r == 0 {
		r = 64
	}
	if r > m {
		r = m
	}
	sched, err := NewSchedule(m, r)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	blocks := sched.Blocks()
	var next atomic.Int64
	var done atomic.Int64
	total := sched.TotalPairs()

	type workerOut struct {
		factors []Factor
		stats   gcd.Stats
		pairs   int64
	}
	outs := make([]workerOut, workers)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := gcd.NewScratch(maxBits)
			out := &outs[w]
			for {
				bi := next.Add(1) - 1
				if bi >= int64(len(blocks)) {
					return
				}
				blockPairs := int64(0)
				sched.BlockPairs(blocks[bi], func(a, b int) {
					x, y := moduli[a], moduli[b]
					opt := gcd.Options{}
					if cfg.Early {
						s := x.BitLen()
						if yb := y.BitLen(); yb < s {
							s = yb
						}
						opt.EarlyBits = s / 2
					}
					g, st := scratch.Compute(cfg.Algorithm, x, y, opt)
					out.stats.Add(&st)
					blockPairs++
					if g != nil && !g.IsOne() {
						out.factors = append(out.factors, Factor{I: a, J: b, P: g})
					}
				})
				out.pairs += blockPairs
				if cfg.Progress != nil {
					cfg.Progress(done.Add(blockPairs), total)
				}
			}
		}(w)
	}
	wg.Wait()

	res := &Result{Elapsed: time.Since(start), Workers: workers}
	for i := range outs {
		res.Pairs += outs[i].pairs
		res.Stats.Add(&outs[i].stats)
		res.Factors = append(res.Factors, outs[i].factors...)
	}
	sortFactors(res.Factors)
	if res.Pairs != total {
		return nil, fmt.Errorf("bulk: internal error: computed %d pairs, want %d", res.Pairs, total)
	}
	return res, nil
}

// sortFactors orders factors by (I, J) so results are deterministic
// regardless of worker interleaving.
func sortFactors(fs []Factor) {
	// Insertion sort: the factor list is tiny (weak keys are rare).
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && less(fs[j], fs[j-1]); j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func less(a, b Factor) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

// Sequential computes the same all-pairs GCDs on a single goroutine; it is
// the repository's stand-in for the paper's CPU measurements (Table V's
// Xeon column) and doubles as the oracle for testing AllPairs.
func Sequential(moduli []*mpnat.Nat, alg gcd.Algorithm, early bool) (*Result, error) {
	cfg := Config{Algorithm: alg, Early: early, Workers: 1, GroupSize: len(moduli)}
	return AllPairs(moduli, cfg)
}
