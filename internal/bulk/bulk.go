package bulk

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

// Factor is one non-trivial GCD found by the all-pairs computation.
type Factor struct {
	// I, J are the indices of the moduli sharing the factor, I < J.
	I, J int
	// P is gcd(n_I, n_J) > 1.
	P *mpnat.Nat
}

// BadPair is one pair whose GCD computation panicked: the panic is
// recovered, the pair quarantined here, and the run continues. I < J.
type BadPair struct {
	I, J int
	Err  string
}

// Quarantined is one input modulus excluded from a run in quarantine
// mode, with the validation reason ("zero", "even").
type Quarantined struct {
	Index  int
	Reason string
}

// Config controls an all-pairs or hybrid bulk run. The cross-engine
// surface (Workers, Progress, Metrics, Trace, Checkpoint/Resume, Fault)
// is the embedded engine.Config; this struct adds the knobs specific to
// the pairwise engines. Progress counts completed pairs at work-unit
// granularity (blocks for AllPairs, tile cells for Hybrid; the hybrid
// counts filter-skipped pairs as done — they are proven coprime).
type Config struct {
	engine.Config

	// Algorithm selects the GCD algorithm (the paper's GPU kernels use
	// Approximate; Binary and FastBinary are the baselines of Table V).
	Algorithm gcd.Algorithm

	// Early enables the early-terminate variant with threshold s/2, where
	// s is the pair's smaller modulus size. This is the mode the paper
	// recommends for RSA moduli (Section V).
	Early bool

	// GroupSize is the paper's r (threads per CUDA block, 64 there);
	// 0 means 64. It only affects work partitioning, not results.
	GroupSize int

	// Quarantine, when true, skips zero/even/nil moduli — reporting them
	// in Result.Quarantined with index and reason — instead of failing
	// the whole run. Factor indices always refer to the original slice.
	Quarantine bool

	// TileSize is the hybrid engine's tile width T: the corpus is cut
	// into tiles of T moduli, each cross-tile cell is filtered with one
	// subproduct GCD per row modulus, and only filter hits descend to
	// per-pair GCDs. 0 means 64. Findings are identical at every value.
	TileSize int

	// SubprodBudget caps the bytes of tile subproducts the hybrid engine
	// caches (LRU); 0 means unlimited. Evictions trade recompute time
	// for memory, never results.
	SubprodBudget int64

	// Kernel selects the per-pair GCD executor for the pairs and hybrid
	// engines: the scalar kernel (the default) or the lane-batched
	// lockstep kernel of internal/lanes, which requires Algorithm ==
	// Approximate. Findings are identical across kernels; Result.Stats
	// differs in iteration and memory accounting because the lane kernel
	// packs two words per limb. The kernel is not part of the journal
	// fingerprint, so a run checkpointed under one kernel resumes under
	// the other.
	Kernel engine.KernelKind

	// LaneWidth is the lane count L of the lanes kernel; 0 means
	// lanes.DefaultWidth. It only affects throughput, never results.
	LaneWidth int
}

// validateKernel rejects configurations the selected kernel cannot honor.
func validateKernel(cfg Config) error {
	if cfg.Kernel == engine.KernelLanes && cfg.Algorithm != gcd.Approximate {
		return fmt.Errorf("bulk: the lanes kernel implements only the %v algorithm (got %v)",
			gcd.Approximate, cfg.Algorithm)
	}
	return nil
}

// Result reports an all-pairs bulk run.
type Result struct {
	// Factors lists every pair with gcd > 1, ordered by (I, J).
	Factors []Factor
	// Stats aggregates the per-GCD statistics over all freshly computed
	// pairs (pairs replayed from a resume journal are not re-measured).
	Stats gcd.Stats
	// Pairs is the number of GCDs accounted for, including pairs restored
	// from the resume journal and quarantined BadPairs. A complete run
	// reaches the schedule's total.
	Pairs int64
	// Total is the schedule's pair count; Pairs == Total unless Canceled.
	Total int64
	// Elapsed is the wall-clock time of the parallel computation.
	Elapsed time.Duration
	// Workers is the pool size actually used.
	Workers int
	// Canceled reports cooperative cancellation: the context was canceled
	// and Factors/Pairs cover only the blocks completed before workers
	// stopped. All completed work is checkpointed and kept.
	Canceled bool
	// ResumedPairs counts the pairs restored from Config.Resume.
	ResumedPairs int64
	// BadPairs lists quarantined pairs (panic recovery), ordered by (I, J).
	BadPairs []BadPair
	// Quarantined lists input moduli excluded in quarantine mode.
	Quarantined []Quarantined
}

// PairsPerSecond returns the aggregate GCD throughput.
func (r *Result) PairsPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Pairs) / r.Elapsed.Seconds()
}

// validateSet scans one labeled modulus slice. Valid moduli land in
// active as base+index; in quarantine mode bad ones are reported in bad,
// otherwise the first bad modulus fails the run (the legacy contract).
func validateSet(name string, base int, moduli []*mpnat.Nat, quarantine bool) (active []int, maxBits int, bad []Quarantined, err error) {
	label := func(i int) string {
		if name == "" {
			return fmt.Sprintf("modulus %d", i)
		}
		return fmt.Sprintf("%s modulus %d", name, i)
	}
	active = make([]int, 0, len(moduli))
	for i, n := range moduli {
		reason := ""
		switch {
		case n == nil || n.IsZero():
			reason = "zero"
		case n.IsEven():
			reason = "even"
		}
		if reason != "" {
			if !quarantine {
				return nil, 0, nil, fmt.Errorf("bulk: %s is %s", label(i), reason)
			}
			bad = append(bad, Quarantined{Index: base + i, Reason: reason})
			continue
		}
		if b := n.BitLen(); b > maxBits {
			maxBits = b
		}
		active = append(active, base+i)
	}
	return active, maxBits, bad, nil
}

// fingerprint hashes the run identity: engine, config knobs that change
// the unit decomposition or findings, and every input modulus (bad ones
// included — quarantine is deterministic, so the raw input is the
// canonical identity).
func fingerprint(engine string, cfg Config, groupSize int, sets ...[]*mpnat.Nat) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|early=%t|quarantine=%t|r=%d", engine, cfg.Algorithm, cfg.Early, cfg.Quarantine, groupSize)
	for _, set := range sets {
		fmt.Fprintf(h, "|set=%d", len(set))
		for _, n := range set {
			if n == nil {
				fmt.Fprint(h, "|nil")
			} else {
				fmt.Fprint(h, "|", n.Hex())
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// allPairsPlan is the validated shape of an all-pairs run: the active
// index set (quarantine applied), its schedule, and the journal header.
type allPairsPlan struct {
	active  []int
	maxBits int
	bad     []Quarantined
	sched   *Schedule
	header  checkpoint.Header
}

func planAllPairs(moduli []*mpnat.Nat, cfg Config) (*allPairsPlan, error) {
	if err := validateKernel(cfg); err != nil {
		return nil, err
	}
	active, maxBits, bad, err := validateSet("", 0, moduli, cfg.Quarantine)
	if err != nil {
		return nil, err
	}
	if len(active) < 2 {
		return nil, fmt.Errorf("bulk: need at least 2 usable moduli, got %d", len(active))
	}
	r := cfg.GroupSize
	if r == 0 {
		r = 64
	}
	if r > len(active) {
		r = len(active)
	}
	sched, err := NewSchedule(len(active), r)
	if err != nil {
		return nil, err
	}
	return &allPairsPlan{
		active:  active,
		maxBits: maxBits,
		bad:     bad,
		sched:   sched,
		header: checkpoint.Header{
			V:           checkpoint.Version,
			Engine:      "allpairs",
			Fingerprint: fingerprint("allpairs", cfg, r, moduli),
			Units:       len(sched.Blocks()),
			TotalPairs:  sched.TotalPairs(),
		},
	}, nil
}

// JournalHeader returns the checkpoint header an AllPairs run over these
// inputs writes, letting callers decide whether an existing journal can
// be resumed before starting the run.
func JournalHeader(moduli []*mpnat.Nat, cfg Config) (checkpoint.Header, error) {
	plan, err := planAllPairs(moduli, cfg)
	if err != nil {
		return checkpoint.Header{}, err
	}
	return plan.header, nil
}

// blockOut accumulates one work unit's results; the unit is journaled
// only once all of these are final, which is what makes a journal record
// equivalent to having computed the block.
type blockOut struct {
	factors []Factor
	bad     []BadPair
	stats   gcd.Stats
	pairs   int64
	// busy accumulates the worker's in-block wall time (compute plus
	// journal appends), feeding the utilization gauge.
	busy time.Duration
}

// record converts a completed unit to its journal form.
func (b *blockOut) record(unit int) checkpoint.Record {
	rec := checkpoint.Record{Unit: unit, Pairs: b.pairs}
	for _, f := range b.factors {
		rec.Factors = append(rec.Factors, checkpoint.Factor{I: f.I, J: f.J, P: f.P.Hex()})
	}
	for _, bp := range b.bad {
		rec.Bad = append(rec.Bad, checkpoint.BadPair{I: bp.I, J: bp.J, Err: bp.Err})
	}
	return rec
}

// pairRunner computes single pairs with panic quarantine. One per worker;
// the scratch is rebuilt after a recovered panic because the kernel may
// have been interrupted mid-update. When Config.Kernel selects the
// lane-batched kernel, lanes is non-nil and pairs queue up for lockstep
// execution instead of running inline (see lanes.go).
type pairRunner struct {
	scratch *gcd.Scratch
	lanes   *laneBatcher
	maxBits int
	cfg     *Config
	moduli  []*mpnat.Nat
	seq     *atomic.Int64
	metrics *runMetrics
}

// newPairRunner builds one worker's runner for the configured kernel.
func newPairRunner(cfg *Config, maxBits int, moduli []*mpnat.Nat, seq *atomic.Int64, metrics *runMetrics) pairRunner {
	pr := pairRunner{
		scratch: gcd.NewScratch(maxBits),
		maxBits: maxBits,
		cfg:     cfg,
		moduli:  moduli,
		seq:     seq,
		metrics: metrics,
	}
	if cfg.Kernel == engine.KernelLanes {
		pr.lanes = newLaneBatcher(cfg.LaneWidth, maxBits, newLanesMetrics(cfg.Metrics))
	}
	return pr
}

// quarantine records a recovered per-pair panic: the pair is reported as
// bad (and accounted, keeping pair totals exact) and the scalar scratch
// is rebuilt because the kernel may have been interrupted mid-update.
func (p *pairRunner) quarantine(a, b int, r any, out *blockOut) {
	out.bad = append(out.bad, BadPair{I: a, J: b, Err: fmt.Sprint(r)})
	out.pairs++
	p.scratch = gcd.NewScratch(p.maxBits)
	p.cfg.Trace.Event("bad_pair", "i", a, "j", b, "err", fmt.Sprint(r))
}

func (p *pairRunner) run(a, b int, out *blockOut) {
	defer func() {
		if r := recover(); r != nil {
			p.quarantine(a, b, r, out)
		}
	}()
	if h := p.cfg.Fault; h != nil {
		h.OnPair(p.seq.Add(1)-1, a, b)
	}
	p.computePair(a, b, out)
}

// computePair runs the scalar kernel on one pair. It carries no fault
// hook and no recover: run wraps it for the inline path, and the lane
// batcher's fallback wraps it separately (the hook already fired at
// enqueue there, and must not fire twice).
func (p *pairRunner) computePair(a, b int, out *blockOut) {
	x, y := p.moduli[a], p.moduli[b]
	opt := gcd.Options{}
	if p.cfg.Early {
		opt.EarlyBits = earlyBitsFor(x, y)
	}
	g, st := p.scratch.Compute(p.cfg.Algorithm, x, y, opt)
	p.metrics.observePair(&st)
	out.stats.Add(&st)
	out.pairs++
	if g != nil && !g.IsOne() {
		out.factors = append(out.factors, Factor{I: a, J: b, P: g})
	}
}

// earlyBitsFor is the paper's s/2 threshold, s the smaller bit length.
func earlyBitsFor(x, y *mpnat.Nat) int {
	s := x.BitLen()
	if yb := y.BitLen(); yb < s {
		s = yb
	}
	return s / 2
}

// restoreJournal converts a verified resume state back into engine terms.
// BadCell records — units a fleet coordinator quarantined instead of
// completing — are skipped, so a local resume recomputes those units.
func restoreJournal(st *checkpoint.State) (factors []Factor, bad []BadPair, pairs int64, err error) {
	for _, rec := range st.Done {
		if rec.BadCell != "" {
			continue
		}
		pairs += rec.Pairs
		for _, f := range rec.Factors {
			p, perr := mpnat.ParseHex(f.P)
			if perr != nil {
				return nil, nil, 0, fmt.Errorf("bulk: resume: factor (%d,%d): %w", f.I, f.J, perr)
			}
			factors = append(factors, Factor{I: f.I, J: f.J, P: p})
		}
		for _, bp := range rec.Bad {
			bad = append(bad, BadPair{I: bp.I, J: bp.J, Err: bp.Err})
		}
	}
	return factors, bad, pairs, nil
}

// AllPairs computes the GCD of every pair of moduli with the block
// decomposition of Section VI executed on a host worker pool. All moduli
// must be odd and positive (RSA moduli are) unless Quarantine is set.
func AllPairs(moduli []*mpnat.Nat, cfg Config) (*Result, error) {
	return AllPairsContext(context.Background(), moduli, cfg)
}

// AllPairsContext is AllPairs with cooperative cancellation: when ctx is
// canceled, workers finish the block they hold (so every journaled block
// is complete), stop claiming new ones, and the partial Result comes back
// with Canceled set instead of an error.
func AllPairsContext(ctx context.Context, moduli []*mpnat.Nat, cfg Config) (*Result, error) {
	plan, err := planAllPairs(moduli, cfg)
	if err != nil {
		return nil, err
	}
	sched := plan.sched
	blocks := sched.Blocks()
	total := sched.TotalPairs()

	resumedFactors, resumedBad, resumedPairs, resumed, err := prepareJournal(plan.header, &cfg)
	if err != nil {
		return nil, err
	}

	workers := cfg.EffectiveWorkers()

	metrics := newRunMetrics(cfg.Metrics, cfg.Algorithm)
	metrics.begin(workers, len(plan.bad), resumedPairs)
	for _, q := range plan.bad {
		cfg.Trace.Event("quarantine", "index", q.Index, "reason", q.Reason)
	}
	runSpan := cfg.Trace.StartSpan("run",
		"engine", "allpairs", "algorithm", cfg.Algorithm.String(), "early", cfg.Early,
		"moduli", len(moduli), "workers", workers, "blocks", len(blocks), "total_pairs", total)

	start := time.Now()
	up := &unitPool{
		cfg: &cfg, moduli: moduli, maxBits: plan.maxBits, metrics: metrics,
		runSpan: runSpan, spanName: "block", spanKey: "block",
		resumed: resumed, total: total, resumed0: resumedPairs,
		run: func(pr *pairRunner, i int, blk *blockOut) {
			sched.BlockPairs(blocks[i], func(a, b int) {
				pr.pair(plan.active[a], plan.active[b], blk)
			})
			pr.flush(blk) // drain the lane batch before the unit is sealed
		},
	}
	outs, _, err := up.execute(ctx, len(blocks), workers)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Elapsed:      time.Since(start),
		Workers:      workers,
		Canceled:     ctx.Err() != nil,
		ResumedPairs: resumedPairs,
		Quarantined:  plan.bad,
		Pairs:        resumedPairs,
		Total:        total,
		Factors:      resumedFactors,
		BadPairs:     resumedBad,
	}
	var busy time.Duration
	for i := range outs {
		res.Pairs += outs[i].pairs
		res.Stats.Add(&outs[i].stats)
		res.Factors = append(res.Factors, outs[i].factors...)
		res.BadPairs = append(res.BadPairs, outs[i].bad...)
		busy += outs[i].busy
	}
	sortFactors(res.Factors)
	sortBadPairs(res.BadPairs)
	metrics.finish(res, busy)
	runSpan.End("pairs", res.Pairs, "factors", len(res.Factors),
		"bad_pairs", len(res.BadPairs), "canceled", res.Canceled)
	if !res.Canceled && res.Pairs != total {
		return nil, fmt.Errorf("bulk: internal error: computed %d pairs, want %d", res.Pairs, total)
	}
	return res, nil
}

// prepareJournal verifies and restores cfg.Resume, and writes (or
// verifies) the header on cfg.Checkpoint.
func prepareJournal(hdr checkpoint.Header, cfg *Config) (factors []Factor, bad []BadPair, pairs int64, resumed map[int]checkpoint.Record, err error) {
	resumed = map[int]checkpoint.Record{}
	if cfg.Resume != nil {
		if err := cfg.Resume.Verify(hdr); err != nil {
			return nil, nil, 0, nil, fmt.Errorf("bulk: resume: %w", err)
		}
		factors, bad, pairs, err = restoreJournal(cfg.Resume)
		if err != nil {
			return nil, nil, 0, nil, err
		}
		for u, rec := range cfg.Resume.Done {
			if rec.BadCell != "" {
				continue // fleet-quarantined unit: recompute it locally
			}
			resumed[u] = rec
		}
	}
	if cfg.Checkpoint != nil {
		if err := cfg.Checkpoint.Begin(hdr); err != nil {
			return nil, nil, 0, nil, err
		}
	}
	return factors, bad, pairs, resumed, nil
}

// merge folds a completed unit into the worker's accumulator.
func (b *blockOut) merge(blk *blockOut) {
	b.factors = append(b.factors, blk.factors...)
	b.bad = append(b.bad, blk.bad...)
	b.stats.Add(&blk.stats)
	b.pairs += blk.pairs
}

// sortFactors orders factors by (I, J) so results are deterministic
// regardless of worker interleaving.
func sortFactors(fs []Factor) {
	sort.Slice(fs, func(a, b int) bool { return less(fs[a], fs[b]) })
}

func less(a, b Factor) bool {
	if a.I != b.I {
		return a.I < b.I
	}
	return a.J < b.J
}

func sortBadPairs(bs []BadPair) {
	sort.Slice(bs, func(a, b int) bool {
		if bs[a].I != bs[b].I {
			return bs[a].I < bs[b].I
		}
		return bs[a].J < bs[b].J
	})
}

// Sequential computes the same all-pairs GCDs on a single goroutine; it is
// the repository's stand-in for the paper's CPU measurements (Table V's
// Xeon column) and doubles as the oracle for testing AllPairs.
func Sequential(moduli []*mpnat.Nat, alg gcd.Algorithm, early bool) (*Result, error) {
	cfg := Config{Config: engine.Config{Workers: 1}, Algorithm: alg, Early: early, GroupSize: len(moduli)}
	return AllPairs(moduli, cfg)
}
