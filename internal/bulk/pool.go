package bulk

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
)

// unitPool is the scaffolding the three bulk engines — all-pairs blocks,
// hybrid cells, incremental stripes — share around the work-stealing
// scheduler (engine.RunStats): lazily built per-worker pairRunner
// arenas (worker indices are stable, so every arena stays pinned to one
// goroutine and the per-pair zero-alloc guarantees survive), resume
// skips, fault-injection hooks, checkpoint journaling with
// abort-on-error, per-unit metrics and tracing, and serialized
// progress. Units are claimed grain-1 from per-worker deques and
// rebalanced by steal-half, so a straggler unit (one dense block, one
// hot cell) no longer strands the rest of a statically partitioned
// pool; findings stay byte-identical at every pool size because each
// unit's output is accumulated per worker and merged+sorted exactly as
// before.
type unitPool struct {
	cfg     *Config
	moduli  []*mpnat.Nat
	maxBits int
	metrics *runMetrics
	runSpan *obs.Span
	// spanName/spanKey name the per-unit child span and its index
	// attribute ("block"/"block", "cell"/"cell", "block"/"stripe").
	spanName string
	spanKey  string
	// spanAttrs, when non-nil, supplies extra attributes for unit i's span.
	spanAttrs func(i int) []any
	resumed   map[int]checkpoint.Record
	total     int64
	resumed0  int64 // pairs restored from the resume journal
	// run computes unit i into blk using the worker's pairRunner and
	// must leave the runner's lane batch drained (pr.flush).
	run func(pr *pairRunner, i int, blk *blockOut)
	// observeUnit, when non-nil, sees each completed unit's duration
	// (the hybrid engine's cell histogram).
	observeUnit func(d time.Duration)
}

// execute runs n units across the scheduler and returns the per-worker
// outputs plus pool statistics. A checkpoint append error cancels the
// pool and is returned; ctx cancellation is not an error here (the
// caller reports a partial Result with Canceled set).
func (up *unitPool) execute(ctx context.Context, n, workers int) ([]blockOut, engine.PoolStats, error) {
	progress := obs.SerializeProgress(up.cfg.Progress)
	var done atomic.Int64
	done.Store(up.resumed0)
	if progress != nil && up.resumed0 > 0 {
		progress(up.resumed0, up.total)
	}
	var pairSeq atomic.Int64
	var ckptOnce sync.Once
	var ckptErr error

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	outs := make([]blockOut, workers)
	runners := make([]*pairRunner, workers)
	st, _ := engine.RunStats(runCtx, n, engine.PoolOptions{Workers: workers, Metrics: up.cfg.Metrics}, func(i, w int) {
		if _, ok := up.resumed[i]; ok {
			return // completed by the interrupted run
		}
		up.cfg.Fault.OnBlock(i)
		pr := runners[w]
		if pr == nil {
			r := newPairRunner(up.cfg, up.maxBits, up.moduli, &pairSeq, up.metrics)
			pr = &r
			runners[w] = pr
		}
		unitStart := time.Now()
		attrs := []any{up.spanKey, i, "worker", w}
		if up.spanAttrs != nil {
			attrs = append(attrs, up.spanAttrs(i)...)
		}
		span := up.runSpan.StartChild(up.spanName, attrs...)
		var blk blockOut
		up.run(pr, i, &blk)
		unitDur := time.Since(unitStart)
		if up.cfg.Checkpoint != nil {
			ckStart := time.Now()
			err := up.cfg.Checkpoint.Append(blk.record(i))
			up.metrics.observeCheckpoint(time.Since(ckStart))
			if err != nil {
				ckptOnce.Do(func() { ckptErr = err; cancel() })
				return
			}
		}
		up.metrics.observeBlock(&blk, unitDur)
		if up.observeUnit != nil {
			up.observeUnit(unitDur)
		}
		span.End("pairs", blk.pairs, "factors", len(blk.factors), "bad_pairs", len(blk.bad))
		out := &outs[w]
		out.merge(&blk)
		out.busy += time.Since(unitStart)
		if progress != nil {
			progress(done.Add(blk.pairs), up.total)
		}
	})
	if ckptErr != nil {
		return nil, st, fmt.Errorf("bulk: checkpoint: %w", ckptErr)
	}
	return outs, st, nil
}
