package bulk

import (
	"context"
	"fmt"
	"time"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/mpnat"
)

// incrementalPlan is the validated shape of an incremental run: active
// old/new index sets (global indices, quarantine applied) and the header.
// The work unit is one new-modulus stripe: all its pairs against old
// moduli plus the later new moduli.
type incrementalPlan struct {
	oldActive []int
	newActive []int
	maxBits   int
	bad       []Quarantined
	total     int64
	header    checkpoint.Header
}

func planIncremental(old, newModuli []*mpnat.Nat, cfg Config) (*incrementalPlan, error) {
	if err := validateKernel(cfg); err != nil {
		return nil, err
	}
	if len(newModuli) == 0 {
		return nil, fmt.Errorf("bulk: no new moduli")
	}
	oldActive, oldBits, oldBad, err := validateSet("old", 0, old, cfg.Quarantine)
	if err != nil {
		return nil, err
	}
	newActive, newBits, newBad, err := validateSet("new", len(old), newModuli, cfg.Quarantine)
	if err != nil {
		return nil, err
	}
	if len(newActive) == 0 {
		return nil, fmt.Errorf("bulk: no usable new moduli")
	}
	maxBits := oldBits
	if newBits > maxBits {
		maxBits = newBits
	}
	total := int64(len(newActive))*int64(len(oldActive)) + int64(len(newActive))*int64(len(newActive)-1)/2
	if total == 0 {
		return nil, fmt.Errorf("bulk: need at least 2 usable moduli in total")
	}
	return &incrementalPlan{
		oldActive: oldActive,
		newActive: newActive,
		maxBits:   maxBits,
		bad:       append(oldBad, newBad...),
		total:     total,
		header: checkpoint.Header{
			V:           checkpoint.Version,
			Engine:      "incremental",
			Fingerprint: fingerprint("incremental", cfg, 0, old, newModuli),
			Units:       len(newActive),
			TotalPairs:  total,
		},
	}, nil
}

// IncrementalJournalHeader returns the checkpoint header an Incremental
// run over these inputs writes.
func IncrementalJournalHeader(old, newModuli []*mpnat.Nat, cfg Config) (checkpoint.Header, error) {
	plan, err := planIncremental(old, newModuli, cfg)
	if err != nil {
		return checkpoint.Header{}, err
	}
	return plan.header, nil
}

// Incremental computes every pair GCD that involves at least one modulus
// of newModuli: the full cross product new x old plus the new x new
// triangle. This is the rolling-scan workload of a real weak-key monitor:
// when a batch of freshly collected keys arrives, the old x old pairs are
// already known to be clean and need not be recomputed.
//
// Factor indices are global: old moduli occupy 0..len(old)-1 and new
// moduli follow, so reports from successive increments compose.
func Incremental(old, newModuli []*mpnat.Nat, cfg Config) (*Result, error) {
	return IncrementalContext(context.Background(), old, newModuli, cfg)
}

// IncrementalContext is Incremental with cooperative cancellation and the
// same checkpoint/resume, quarantine and panic-recovery semantics as
// AllPairsContext. The journaled work unit is one new-modulus stripe.
func IncrementalContext(ctx context.Context, old, newModuli []*mpnat.Nat, cfg Config) (*Result, error) {
	plan, err := planIncremental(old, newModuli, cfg)
	if err != nil {
		return nil, err
	}
	resumedFactors, resumedBad, resumedPairs, resumed, err := prepareJournal(plan.header, &cfg)
	if err != nil {
		return nil, err
	}

	workers := cfg.EffectiveWorkers()
	// The combined slice gives pairRunner global-index addressing.
	all := make([]*mpnat.Nat, 0, len(old)+len(newModuli))
	all = append(all, old...)
	all = append(all, newModuli...)

	metrics := newRunMetrics(cfg.Metrics, cfg.Algorithm)
	metrics.begin(workers, len(plan.bad), resumedPairs)
	for _, q := range plan.bad {
		cfg.Trace.Event("quarantine", "index", q.Index, "reason", q.Reason)
	}
	runSpan := cfg.Trace.StartSpan("run",
		"engine", "incremental", "algorithm", cfg.Algorithm.String(), "early", cfg.Early,
		"old", len(old), "new", len(newModuli), "workers", workers,
		"stripes", len(plan.newActive), "total_pairs", plan.total)

	start := time.Now()
	up := &unitPool{
		cfg: &cfg, moduli: all, maxBits: plan.maxBits, metrics: metrics,
		runSpan: runSpan, spanName: "block", spanKey: "stripe",
		resumed: resumed, total: plan.total, resumed0: resumedPairs,
		run: func(pr *pairRunner, j int, blk *blockOut) {
			gj := plan.newActive[j]
			for _, gi := range plan.oldActive {
				pr.pair(gi, gj, blk)
			}
			for k := j + 1; k < len(plan.newActive); k++ {
				pr.pair(gj, plan.newActive[k], blk)
			}
			pr.flush(blk) // drain the lane batch before the unit is sealed
		},
	}
	outs, _, err := up.execute(ctx, len(plan.newActive), workers)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Elapsed:      time.Since(start),
		Workers:      workers,
		Canceled:     ctx.Err() != nil,
		ResumedPairs: resumedPairs,
		Quarantined:  plan.bad,
		Pairs:        resumedPairs,
		Total:        plan.total,
		Factors:      resumedFactors,
		BadPairs:     resumedBad,
	}
	var busy time.Duration
	for i := range outs {
		res.Pairs += outs[i].pairs
		res.Stats.Add(&outs[i].stats)
		res.Factors = append(res.Factors, outs[i].factors...)
		res.BadPairs = append(res.BadPairs, outs[i].bad...)
		busy += outs[i].busy
	}
	sortFactors(res.Factors)
	sortBadPairs(res.BadPairs)
	metrics.finish(res, busy)
	runSpan.End("pairs", res.Pairs, "factors", len(res.Factors),
		"bad_pairs", len(res.BadPairs), "canceled", res.Canceled)
	if !res.Canceled && res.Pairs != plan.total {
		return nil, fmt.Errorf("bulk: internal error: computed %d pairs, want %d", res.Pairs, plan.total)
	}
	return res, nil
}
