package bulk

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

// Incremental computes every pair GCD that involves at least one modulus
// of newModuli: the full cross product new x old plus the new x new
// triangle. This is the rolling-scan workload of a real weak-key monitor:
// when a batch of freshly collected keys arrives, the old x old pairs are
// already known to be clean and need not be recomputed.
//
// Factor indices are global: old moduli occupy 0..len(old)-1 and new
// moduli follow, so reports from successive increments compose.
func Incremental(old, newModuli []*mpnat.Nat, cfg Config) (*Result, error) {
	if len(newModuli) == 0 {
		return nil, fmt.Errorf("bulk: no new moduli")
	}
	maxBits := 0
	for name, set := range map[string][]*mpnat.Nat{"old": old, "new": newModuli} {
		for i, n := range set {
			if n == nil || n.IsZero() {
				return nil, fmt.Errorf("bulk: %s modulus %d is zero", name, i)
			}
			if n.IsEven() {
				return nil, fmt.Errorf("bulk: %s modulus %d is even", name, i)
			}
			if b := n.BitLen(); b > maxBits {
				maxBits = b
			}
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := int64(len(newModuli))*int64(len(old)) + int64(len(newModuli))*int64(len(newModuli)-1)/2

	type workerOut struct {
		factors []Factor
		stats   gcd.Stats
		pairs   int64
	}
	outs := make([]workerOut, workers)
	var next atomic.Int64
	var done atomic.Int64

	compute := func(scratch *gcd.Scratch, out *workerOut, a, b int, x, y *mpnat.Nat) {
		opt := gcd.Options{}
		if cfg.Early {
			s := x.BitLen()
			if yb := y.BitLen(); yb < s {
				s = yb
			}
			opt.EarlyBits = s / 2
		}
		g, st := scratch.Compute(cfg.Algorithm, x, y, opt)
		out.stats.Add(&st)
		out.pairs++
		if g != nil && !g.IsOne() {
			out.factors = append(out.factors, Factor{I: a, J: b, P: g})
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := gcd.NewScratch(maxBits)
			out := &outs[w]
			for {
				j := next.Add(1) - 1
				if j >= int64(len(newModuli)) {
					return
				}
				nj := newModuli[j]
				gj := len(old) + int(j) // global index of new modulus j
				for i := range old {
					compute(scratch, out, i, gj, old[i], nj)
				}
				for k := int(j) + 1; k < len(newModuli); k++ {
					compute(scratch, out, gj, len(old)+k, nj, newModuli[k])
				}
				if cfg.Progress != nil {
					cfg.Progress(done.Add(int64(len(old)+len(newModuli)-1-int(j))), total)
				}
			}
		}(w)
	}
	wg.Wait()

	res := &Result{Elapsed: time.Since(start), Workers: workers}
	for i := range outs {
		res.Pairs += outs[i].pairs
		res.Stats.Add(&outs[i].stats)
		res.Factors = append(res.Factors, outs[i].factors...)
	}
	sortFactors(res.Factors)
	if res.Pairs != total {
		return nil, fmt.Errorf("bulk: internal error: computed %d pairs, want %d", res.Pairs, total)
	}
	return res, nil
}
