package bulk

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

// incrementalPlan is the validated shape of an incremental run: active
// old/new index sets (global indices, quarantine applied) and the header.
// The work unit is one new-modulus stripe: all its pairs against old
// moduli plus the later new moduli.
type incrementalPlan struct {
	oldActive []int
	newActive []int
	maxBits   int
	bad       []Quarantined
	total     int64
	header    checkpoint.Header
}

func planIncremental(old, newModuli []*mpnat.Nat, cfg Config) (*incrementalPlan, error) {
	if len(newModuli) == 0 {
		return nil, fmt.Errorf("bulk: no new moduli")
	}
	oldActive, oldBits, oldBad, err := validateSet("old", 0, old, cfg.Quarantine)
	if err != nil {
		return nil, err
	}
	newActive, newBits, newBad, err := validateSet("new", len(old), newModuli, cfg.Quarantine)
	if err != nil {
		return nil, err
	}
	if len(newActive) == 0 {
		return nil, fmt.Errorf("bulk: no usable new moduli")
	}
	maxBits := oldBits
	if newBits > maxBits {
		maxBits = newBits
	}
	total := int64(len(newActive))*int64(len(oldActive)) + int64(len(newActive))*int64(len(newActive)-1)/2
	if total == 0 {
		return nil, fmt.Errorf("bulk: need at least 2 usable moduli in total")
	}
	return &incrementalPlan{
		oldActive: oldActive,
		newActive: newActive,
		maxBits:   maxBits,
		bad:       append(oldBad, newBad...),
		total:     total,
		header: checkpoint.Header{
			V:           checkpoint.Version,
			Engine:      "incremental",
			Fingerprint: fingerprint("incremental", cfg, 0, old, newModuli),
			Units:       len(newActive),
			TotalPairs:  total,
		},
	}, nil
}

// IncrementalJournalHeader returns the checkpoint header an Incremental
// run over these inputs writes.
func IncrementalJournalHeader(old, newModuli []*mpnat.Nat, cfg Config) (checkpoint.Header, error) {
	plan, err := planIncremental(old, newModuli, cfg)
	if err != nil {
		return checkpoint.Header{}, err
	}
	return plan.header, nil
}

// Incremental computes every pair GCD that involves at least one modulus
// of newModuli: the full cross product new x old plus the new x new
// triangle. This is the rolling-scan workload of a real weak-key monitor:
// when a batch of freshly collected keys arrives, the old x old pairs are
// already known to be clean and need not be recomputed.
//
// Factor indices are global: old moduli occupy 0..len(old)-1 and new
// moduli follow, so reports from successive increments compose.
func Incremental(old, newModuli []*mpnat.Nat, cfg Config) (*Result, error) {
	return IncrementalContext(context.Background(), old, newModuli, cfg)
}

// IncrementalContext is Incremental with cooperative cancellation and the
// same checkpoint/resume, quarantine and panic-recovery semantics as
// AllPairsContext. The journaled work unit is one new-modulus stripe.
func IncrementalContext(ctx context.Context, old, newModuli []*mpnat.Nat, cfg Config) (*Result, error) {
	plan, err := planIncremental(old, newModuli, cfg)
	if err != nil {
		return nil, err
	}
	resumedFactors, resumedBad, resumedPairs, resumed, err := prepareJournal(plan.header, &cfg)
	if err != nil {
		return nil, err
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The combined slice gives pairRunner global-index addressing.
	all := make([]*mpnat.Nat, 0, len(old)+len(newModuli))
	all = append(all, old...)
	all = append(all, newModuli...)

	outs := make([]blockOut, workers)
	var next atomic.Int64
	var done atomic.Int64
	done.Store(resumedPairs)
	if cfg.Progress != nil && resumedPairs > 0 {
		cfg.Progress(resumedPairs, plan.total)
	}
	var pairSeq atomic.Int64
	var ckptOnce sync.Once
	var ckptErr error

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pr := pairRunner{
				scratch: gcd.NewScratch(plan.maxBits),
				maxBits: plan.maxBits,
				cfg:     &cfg,
				moduli:  all,
				seq:     &pairSeq,
			}
			out := &outs[w]
			for {
				if ctx.Err() != nil {
					return
				}
				j := next.Add(1) - 1
				if j >= int64(len(plan.newActive)) {
					return
				}
				if _, ok := resumed[int(j)]; ok {
					continue
				}
				cfg.Fault.OnBlock(int(j))
				gj := plan.newActive[j]
				var blk blockOut
				for _, gi := range plan.oldActive {
					pr.run(gi, gj, &blk)
				}
				for k := int(j) + 1; k < len(plan.newActive); k++ {
					pr.run(gj, plan.newActive[k], &blk)
				}
				if cfg.Checkpoint != nil {
					if err := cfg.Checkpoint.Append(blk.record(int(j))); err != nil {
						ckptOnce.Do(func() { ckptErr = err })
						return
					}
				}
				out.merge(&blk)
				if cfg.Progress != nil {
					cfg.Progress(done.Add(blk.pairs), plan.total)
				}
			}
		}(w)
	}
	wg.Wait()

	if ckptErr != nil {
		return nil, fmt.Errorf("bulk: checkpoint: %w", ckptErr)
	}
	res := &Result{
		Elapsed:      time.Since(start),
		Workers:      workers,
		Canceled:     ctx.Err() != nil,
		ResumedPairs: resumedPairs,
		Quarantined:  plan.bad,
		Pairs:        resumedPairs,
		Total:        plan.total,
		Factors:      resumedFactors,
		BadPairs:     resumedBad,
	}
	for i := range outs {
		res.Pairs += outs[i].pairs
		res.Stats.Add(&outs[i].stats)
		res.Factors = append(res.Factors, outs[i].factors...)
		res.BadPairs = append(res.BadPairs, outs[i].bad...)
	}
	sortFactors(res.Factors)
	sortBadPairs(res.BadPairs)
	if !res.Canceled && res.Pairs != plan.total {
		return nil, fmt.Errorf("bulk: internal error: computed %d pairs, want %d", res.Pairs, plan.total)
	}
	return res, nil
}
