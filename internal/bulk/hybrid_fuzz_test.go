package bulk

import (
	"fmt"
	"math/big"
	"testing"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

// fuzzOddModuli decodes the fuzz input into 2..8 small odd positive
// moduli: byte 0 picks the count, each following byte pair one 16-bit
// value forced odd. Small values collide on factors constantly, which
// is exactly what stresses the filter's hit path.
func fuzzOddModuli(data []byte) []*mpnat.Nat {
	if len(data) < 5 {
		return nil
	}
	n := 2 + int(data[0])%7
	var out []*mpnat.Nat
	for i := 1; i+1 < len(data) && len(out) < n; i += 2 {
		v := uint64(data[i])<<8 | uint64(data[i+1])
		out = append(out, mpnat.New(v|1))
	}
	if len(out) < 2 {
		return nil
	}
	return out
}

// FuzzHybridMatchesNaive cross-checks the hybrid engine against
// brute-force pairwise big.Int GCD on arbitrary small odd-moduli sets,
// at every interesting tile size: the reported factor pairs must be
// exactly the naive non-coprime pairs with the exact gcd values, and
// every covered pair must be accounted.
func FuzzHybridMatchesNaive(f *testing.F) {
	f.Add([]byte{0, 0, 15, 0, 21})                   // 15, 21 share 3
	f.Add([]byte{1, 0, 15, 0, 21, 0, 35})            // every prime shared
	f.Add([]byte{0, 0, 15, 0, 15})                   // duplicates
	f.Add([]byte{2, 0, 15, 0, 15, 0, 15, 0, 7})      // triple duplicate + coprime
	f.Add([]byte{0, 0, 3, 0, 45})                    // 3 divides 45
	f.Add([]byte{6, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9})   // random-ish spread
	f.Add([]byte{3, 0, 1, 0, 1, 255, 255, 127, 253}) // ones and big odds

	f.Fuzz(func(t *testing.T, data []byte) {
		ms := fuzzOddModuli(data)
		if ms == nil {
			return
		}
		// Naive oracle: every pair with gcd > 1, in (i, j) order.
		bigs := make([]*big.Int, len(ms))
		for i, m := range ms {
			bigs[i] = m.ToBig()
		}
		var want []string
		for i := 0; i < len(bigs); i++ {
			for j := i + 1; j < len(bigs); j++ {
				g := new(big.Int).GCD(nil, nil, bigs[i], bigs[j])
				if g.Cmp(big.NewInt(1)) > 0 {
					want = append(want, fmt.Sprintf("%d,%d,%x", i, j, g))
				}
			}
		}
		for _, tile := range []int{1, 2, 3, len(ms)} {
			for _, workers := range []int{1, 8} {
				res, err := Hybrid(ms, Config{
					Config:    engine.Config{Workers: workers},
					Algorithm: gcd.Approximate, TileSize: tile,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := factorKeys(res.Factors)
				if len(got) != len(want) {
					t.Fatalf("tile=%d workers=%d: %d factors, naive %d (%v vs %v, ms=%v)",
						tile, workers, len(got), len(want), got, want, ms)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("tile=%d workers=%d: factor %d = %s, naive %s (ms=%v)",
							tile, workers, i, got[i], want[i], ms)
					}
				}
				if res.Pairs != res.Total {
					t.Fatalf("tile=%d workers=%d: covered %d of %d pairs", tile, workers, res.Pairs, res.Total)
				}
			}
		}
	})
}
