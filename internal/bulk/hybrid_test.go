package bulk

import (
	"context"
	"path/filepath"
	"testing"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/obs"
)

// TestHybridMatchesAllPairs: the core hybrid contract — Factors are
// byte-identical to the all-pairs engine at every tile size and worker
// count, with the pair total fully accounted.
func TestHybridMatchesAllPairs(t *testing.T) {
	c := corpus(t, 48, 64, 5, 77)
	ms := c.Moduli()
	ms[7] = ms[3].Clone() // duplicate modulus: Π(tile) ≡ 0 path
	base, err := AllPairs(ms, Config{Algorithm: gcd.Approximate, Early: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Factors) == 0 {
		t.Fatal("corpus with planted pairs produced no factors")
	}
	for _, tile := range []int{1, 4, 32, len(ms)} {
		for _, workers := range []int{1, 8} {
			res, err := Hybrid(ms, Config{
				Config:    engine.Config{Workers: workers},
				Algorithm: gcd.Approximate, Early: true, TileSize: tile,
			})
			if err != nil {
				t.Fatalf("tile=%d workers=%d: %v", tile, workers, err)
			}
			sameFactors(t, res.Factors, base.Factors)
			if res.Pairs != base.Pairs || res.Total != base.Total {
				t.Fatalf("tile=%d workers=%d: pairs %d/%d, all-pairs %d/%d",
					tile, workers, res.Pairs, res.Total, base.Pairs, base.Total)
			}
			if res.Canceled {
				t.Fatalf("tile=%d workers=%d: spuriously canceled", tile, workers)
			}
		}
	}
}

// TestHybridSkipsPairs: on a sparse corpus the filter must actually skip
// work — the whole point of the engine — and the skip counters must
// account exactly for the pairs not descended.
func TestHybridSkipsPairs(t *testing.T) {
	c := corpus(t, 64, 64, 2, 78)
	reg := obs.NewRegistry()
	res, err := Hybrid(c.Moduli(), Config{
		Config:    engine.Config{Metrics: reg},
		Algorithm: gcd.Approximate, Early: true, TileSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	descended := snap.Counters["bulk_hybrid_descended_pairs_total"]
	skipped := snap.Counters["bulk_hybrid_skipped_pairs_total"]
	filters := snap.Counters["bulk_hybrid_filter_gcds_total"]
	diagonal := res.Total - descended - skipped // diagonal cells never filter
	if skipped == 0 {
		t.Fatal("sparse corpus skipped no pairs")
	}
	if diagonal <= 0 {
		t.Fatalf("diagonal pairs = %d (descended %d, skipped %d, total %d)",
			diagonal, descended, skipped, res.Total)
	}
	if filters == 0 || filters >= res.Total {
		t.Fatalf("filter GCDs = %d, want within (0, %d)", filters, res.Total)
	}
	if hits, skips := snap.Counters["bulk_hybrid_tile_hits_total"], snap.Counters["bulk_hybrid_tile_skips_total"]; hits+skips != filters {
		t.Fatalf("hit rows %d + skip rows %d != filter GCDs %d", hits, skips, filters)
	}
	if snap.Counters["bulk_subprod_cache_misses_total"] == 0 {
		t.Fatal("subproduct cache never built anything")
	}
}

// TestHybridSubprodBudget: a tiny budget forces evictions and rebuilds
// but never changes the results.
func TestHybridSubprodBudget(t *testing.T) {
	c := corpus(t, 40, 64, 3, 79)
	base, err := AllPairs(c.Moduli(), Config{Algorithm: gcd.Approximate, Early: true})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, err := Hybrid(c.Moduli(), Config{
		Config:    engine.Config{Metrics: reg},
		Algorithm: gcd.Approximate, Early: true, TileSize: 4,
		SubprodBudget: 64, // a couple of 64-bit×4 subproducts at most
	})
	if err != nil {
		t.Fatal(err)
	}
	sameFactors(t, res.Factors, base.Factors)
	if reg.Snapshot().Counters["bulk_subprod_cache_evictions_total"] == 0 {
		t.Fatal("64-byte budget evicted nothing")
	}
}

// TestHybridQuarantine: quarantine mode reports bad inputs and the
// factor indices still refer to the original slice, matching all-pairs.
func TestHybridQuarantine(t *testing.T) {
	c := corpus(t, 20, 64, 3, 80)
	ms := c.Moduli()
	ms[4] = &mpnat.Nat{}    // zero
	ms[9] = mpnat.New(1000) // even
	cfg := Config{Algorithm: gcd.Approximate, Early: true, Quarantine: true, TileSize: 4}
	base, err := AllPairs(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Hybrid(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameFactors(t, res.Factors, base.Factors)
	if len(res.Quarantined) != 2 {
		t.Fatalf("quarantined %v", res.Quarantined)
	}
}

// TestHybridCancelPartial: cancellation at cell boundaries keeps the
// partial result sound (every reported factor is real).
func TestHybridCancelPartial(t *testing.T) {
	c := corpus(t, 24, 64, 3, 81)
	clean, err := Hybrid(c.Moduli(), Config{Algorithm: gcd.Approximate, Early: true, TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, k := range factorKeys(clean.Factors) {
		want[k] = true
	}
	for _, at := range []int64{0, 1, 9, 30} {
		ctx, cancel := context.WithCancel(context.Background())
		plan := faultinject.NewPlan()
		plan.CancelAtPair = at
		plan.Cancel = cancel
		res, err := HybridContext(ctx, c.Moduli(), Config{
			Config:    engine.Config{Workers: 3, Fault: plan.Hook()},
			Algorithm: gcd.Approximate, Early: true, TileSize: 4,
		})
		cancel()
		if err != nil {
			t.Fatalf("cancel at %d: %v", at, err)
		}
		if !res.Canceled {
			t.Fatalf("cancel at %d: run completed before the cancel fired", at)
		}
		if res.Pairs > res.Total {
			t.Fatalf("cancel at %d: pairs %d > total %d", at, res.Pairs, res.Total)
		}
		for _, k := range factorKeys(res.Factors) {
			if !want[k] {
				t.Fatalf("cancel at %d: phantom factor %s", at, k)
			}
		}
	}
}

// TestHybridCheckpointResumeEquivalence: interrupt the hybrid run at
// several points, resume from the journal, and require the final result
// to match an uninterrupted run exactly.
func TestHybridCheckpointResumeEquivalence(t *testing.T) {
	c := corpus(t, 24, 64, 4, 82)
	cfg := Config{Algorithm: gcd.Approximate, Early: true, TileSize: 4}
	clean, err := Hybrid(c.Moduli(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, killAt := range []int64{0, 3, 25} {
		path := filepath.Join(t.TempDir(), "run.jsonl")
		w, err := checkpoint.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		plan := faultinject.NewPlan()
		plan.CancelAtPair = killAt
		plan.Cancel = cancel
		kcfg := cfg
		kcfg.Workers = 3
		kcfg.Checkpoint = w
		kcfg.Fault = plan.Hook()
		res, err := HybridContext(ctx, c.Moduli(), kcfg)
		cancel()
		if err != nil {
			t.Fatalf("kill at %d: %v", killAt, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if !res.Canceled {
			t.Fatalf("kill at %d: run completed before the cancel fired", killAt)
		}

		st, err := checkpoint.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Pairs(); got != res.Pairs {
			t.Fatalf("kill at %d: journal has %d pairs, result reported %d", killAt, got, res.Pairs)
		}
		w2, err := checkpoint.OpenAppend(path)
		if err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.Workers = 2
		rcfg.Resume = st
		rcfg.Checkpoint = w2
		resumed, err := Hybrid(c.Moduli(), rcfg)
		if err != nil {
			t.Fatalf("resume after kill at %d: %v", killAt, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		if resumed.Pairs != clean.Pairs {
			t.Fatalf("resumed run covered %d pairs, want %d", resumed.Pairs, clean.Pairs)
		}
		if resumed.ResumedPairs != res.Pairs {
			t.Fatalf("resumed run replayed %d pairs, journal had %d", resumed.ResumedPairs, res.Pairs)
		}
		sameFactors(t, resumed.Factors, clean.Factors)
	}
}

// TestHybridResumeRejectsMismatchedTile: the tile size is part of the
// fingerprint — a journal from tile=4 must not resume a tile=8 run.
func TestHybridResumeRejectsMismatchedTile(t *testing.T) {
	c := corpus(t, 16, 64, 2, 83)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	w, err := checkpoint.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Config: engine.Config{Checkpoint: w}, Algorithm: gcd.Approximate, TileSize: 4}
	if _, err := Hybrid(c.Moduli(), cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Hybrid(c.Moduli(), Config{
		Config: engine.Config{Resume: st}, Algorithm: gcd.Approximate, TileSize: 8,
	}); err == nil {
		t.Fatal("tile=8 run accepted a tile=4 journal")
	}
	if _, err := Hybrid(c.Moduli(), Config{
		Config: engine.Config{Resume: st}, Algorithm: gcd.Approximate, TileSize: 4,
	}); err != nil {
		t.Fatalf("matching resume rejected: %v", err)
	}
}

// TestHybridPanicQuarantine: a panic injected into a descended pair is
// quarantined exactly like the all-pairs engine, and a panic during the
// filter conservatively descends instead of dropping findings.
func TestHybridPanicQuarantine(t *testing.T) {
	c := corpus(t, 16, 64, 2, 84)
	for _, at := range []int64{0, 5} {
		plan := faultinject.NewPlan()
		plan.PanicAtPair = at
		res, err := Hybrid(c.Moduli(), Config{
			Config:    engine.Config{Workers: 2, Fault: plan.Hook()},
			Algorithm: gcd.Approximate, Early: true, TileSize: 4,
		})
		if err != nil {
			t.Fatalf("panic at %d: %v", at, err)
		}
		if len(res.BadPairs) != 1 {
			t.Fatalf("panic at %d: %d bad pairs", at, len(res.BadPairs))
		}
		if res.Pairs != res.Total {
			t.Fatalf("panic at %d: covered %d pairs, want %d", at, res.Pairs, res.Total)
		}
	}
}

// TestHybridJournalHeader: the header is stable and distinct from the
// all-pairs engine's.
func TestHybridJournalHeader(t *testing.T) {
	c := corpus(t, 8, 64, 1, 85)
	cfg := Config{Algorithm: gcd.Approximate, TileSize: 4}
	h, err := HybridJournalHeader(c.Moduli(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Engine != "hybrid" || h.TotalPairs != 8*7/2 || h.Units != 2+1 {
		t.Fatalf("header %+v", h)
	}
	ap, err := JournalHeader(c.Moduli(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Fingerprint == h.Fingerprint {
		t.Fatal("hybrid and all-pairs share a fingerprint")
	}
}
