package bulk

import (
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/rsakey"
	"bulkgcd/internal/umm"
)

// TestAllPairsBlockDecomposition verifies the Section VI kernel structure:
// over all blocks, every unordered pair of modulus indices is visited
// exactly once, for several (m, r) shapes including partial final groups.
func TestAllPairsBlockDecomposition(t *testing.T) {
	for _, c := range []struct{ m, r int }{
		{2, 1}, {4, 2}, {16, 4}, {16, 16}, {17, 4}, {100, 7}, {64, 64}, {9, 1},
	} {
		sched, err := NewSchedule(c.m, c.r)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[[2]int]int{}
		for _, blk := range sched.Blocks() {
			sched.BlockPairs(blk, func(a, b int) {
				if a == b {
					t.Fatalf("m=%d r=%d: self pair (%d,%d)", c.m, c.r, a, b)
				}
				lo, hi := a, b
				if lo > hi {
					lo, hi = hi, lo
				}
				seen[[2]int{lo, hi}]++
			})
		}
		want := int(sched.TotalPairs())
		if len(seen) != want {
			t.Fatalf("m=%d r=%d: %d distinct pairs, want %d", c.m, c.r, len(seen), want)
		}
		for pair, n := range seen {
			if n != 1 {
				t.Fatalf("m=%d r=%d: pair %v visited %d times", c.m, c.r, pair, n)
			}
		}
		// Idle blocks (I > J) contribute nothing.
		count := 0
		sched.BlockPairs(Block{I: 1, J: 0}, func(a, b int) { count++ })
		if count != 0 {
			t.Fatalf("idle block computed %d pairs", count)
		}
	}
}

func TestNewScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(1, 1); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := NewSchedule(10, 0); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := NewSchedule(10, 11); err == nil {
		t.Error("r>m accepted")
	}
}

// corpus returns a deterministic weak corpus for attack tests.
func corpus(t testing.TB, count, bits, weak int, seed int64) *rsakey.Corpus {
	t.Helper()
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: count, Bits: bits, WeakPairs: weak, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAllPairsFindsPlantedFactors is the end-to-end attack property: the
// bulk all-pairs run finds exactly the planted weak pairs, for every
// algorithm and both terminate modes.
func TestAllPairsFindsPlantedFactors(t *testing.T) {
	c := corpus(t, 24, 128, 4, 11)
	for _, alg := range gcd.Algorithms {
		for _, early := range []bool{false, true} {
			res, err := AllPairs(c.Moduli(), Config{Algorithm: alg, Early: early, GroupSize: 5})
			if err != nil {
				t.Fatal(err)
			}
			if res.Pairs != 24*23/2 {
				t.Fatalf("%v: computed %d pairs", alg, res.Pairs)
			}
			if len(res.Factors) != len(c.Planted) {
				t.Fatalf("%v early=%v: found %d factors, want %d", alg, early, len(res.Factors), len(c.Planted))
			}
			want := map[[2]int]*big.Int{}
			for _, pp := range c.Planted {
				want[[2]int{pp.I, pp.J}] = pp.P
			}
			for _, f := range res.Factors {
				p, ok := want[[2]int{f.I, f.J}]
				if !ok {
					t.Fatalf("%v: unexpected factor at pair (%d,%d)", alg, f.I, f.J)
				}
				if f.P.ToBig().Cmp(p) != 0 {
					t.Fatalf("%v: factor at (%d,%d) value mismatch", alg, f.I, f.J)
				}
			}
		}
	}
}

// TestAllPairsMatchesSequential checks the parallel executor against the
// single-worker oracle for factors and aggregate statistics.
func TestAllPairsMatchesSequential(t *testing.T) {
	c := corpus(t, 30, 64, 3, 12)
	seq, err := Sequential(c.Moduli(), gcd.Approximate, false)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AllPairs(c.Moduli(), Config{Config: engine.Config{Workers: 4}, Algorithm: gcd.Approximate, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Pairs != par.Pairs {
		t.Fatalf("pair counts differ: %d vs %d", seq.Pairs, par.Pairs)
	}
	if seq.Stats.Iterations != par.Stats.Iterations || seq.Stats.MemOps != par.Stats.MemOps {
		t.Fatalf("stats differ: %+v vs %+v", seq.Stats, par.Stats)
	}
	if len(seq.Factors) != len(par.Factors) {
		t.Fatalf("factor counts differ")
	}
	for i := range seq.Factors {
		if seq.Factors[i] != par.Factors[i] && seq.Factors[i].P.Cmp(par.Factors[i].P) != 0 {
			t.Fatalf("factor %d differs", i)
		}
	}
}

// TestAllPairsDuplicateModulus covers the duplicate-key case: gcd = n.
func TestAllPairsDuplicateModulus(t *testing.T) {
	c := corpus(t, 6, 64, 0, 13)
	moduli := c.Moduli()
	moduli = append(moduli, moduli[2]) // duplicate key
	res, err := AllPairs(moduli, Config{Algorithm: gcd.Approximate})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Factors) != 1 {
		t.Fatalf("found %d factors, want 1", len(res.Factors))
	}
	f := res.Factors[0]
	if f.I != 2 || f.J != 6 || f.P.Cmp(moduli[2]) != 0 {
		t.Fatalf("duplicate not detected correctly: %+v", f)
	}
}

func TestAllPairsValidation(t *testing.T) {
	odd := mpnat.New(15)
	if _, err := AllPairs([]*mpnat.Nat{odd}, Config{}); err == nil {
		t.Error("single modulus accepted")
	}
	if _, err := AllPairs([]*mpnat.Nat{odd, mpnat.New(4)}, Config{}); err == nil {
		t.Error("even modulus accepted")
	}
	if _, err := AllPairs([]*mpnat.Nat{odd, &mpnat.Nat{}}, Config{}); err == nil {
		t.Error("zero modulus accepted")
	}
}

func TestAllPairsProgress(t *testing.T) {
	c := corpus(t, 12, 64, 0, 14)
	var mu sync.Mutex
	var last int64
	res, err := AllPairs(c.Moduli(), Config{
		Algorithm: gcd.FastBinary,
		GroupSize: 3,
		Config: engine.Config{Progress: func(done, total int64) {
			mu.Lock()
			if done > last {
				last = done
			}
			if total != 66 {
				t.Errorf("total = %d, want 66", total)
			}
			mu.Unlock()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != res.Pairs {
		t.Errorf("final progress %d != pairs %d", last, res.Pairs)
	}
	if res.PairsPerSecond() <= 0 {
		t.Error("throughput not positive")
	}
}

func randOddNat(r *rand.Rand, bits int) *mpnat.Nat {
	v := new(big.Int)
	for v.BitLen() < bits {
		v.Lsh(v, 32)
		v.Or(v, new(big.Int).SetUint64(uint64(r.Uint32())))
	}
	v.Rsh(v, uint(v.BitLen()-bits))
	v.SetBit(v, bits-1, 1)
	v.SetBit(v, 0, 1)
	return mpnat.FromBig(v)
}

// TestShapeProgramAddressStream pins the address stream of a tiny shape
// trace: a 2-word full pass with swap, then a 1-word halve-X on the
// swapped arena.
func TestShapeProgramAddressStream(t *testing.T) {
	shapes := []gcd.IterShape{
		{LX: 2, LY: 1, Branch: gcd.BranchFull, Swapped: true},
		{LX: 1, LY: 1, Branch: gcd.BranchHalveX},
	}
	const (
		p     = 4
		j     = 1
		words = 2
	)
	prog := ShapeProgram(shapes, p, j, words)
	// Arena 0 rows 0..1, arena 1 rows 2..3; addr = row*4 + 1.
	want := []int64{
		// Full pass, X = arena 0, Y = arena 1:
		0*4 + 1, 2*4 + 1, 0*4 + 1, // x0 r, y0 r, x0 w
		1*4 + 1, 1*4 + 1, // x1 r, x1 w (ly=1: no y1)
		// After swap X = arena 1; halve-X touches row 2.
		2*4 + 1, 2*4 + 1,
	}
	var got []int64
	for {
		a, ok := prog.Next()
		if !ok {
			break
		}
		got = append(got, a)
	}
	if len(got) != len(want) {
		t.Fatalf("stream length %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("addr %d = %d, want %d (full stream %v)", i, got[i], want[i], got)
		}
	}
}

// TestShapeProgramExtraY checks the beta > 0 replay appends a Y read pass.
func TestShapeProgramExtraY(t *testing.T) {
	shapes := []gcd.IterShape{{LX: 1, LY: 1, Branch: gcd.BranchFull, ExtraY: true}}
	prog := ShapeProgram(shapes, 1, 0, 1)
	var got []int64
	for {
		a, ok := prog.Next()
		if !ok {
			break
		}
		got = append(got, a)
	}
	// x0 r (row 0), y0 r (row 1), x0 w (row 0), extra y pass (row 1).
	want := []int64{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestSimulateIdenticalThreadsFullyCoalesced: when every thread computes
// the same pair, the bulk execution is exactly oblivious, so the UMM run
// must be fully coalesced and match Theorem 1's closed form.
func TestSimulateIdenticalThreadsFullyCoalesced(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	x := randOddNat(r, 256)
	y := randOddNat(r, 256)
	const p = 32
	xs := make([]*mpnat.Nat, p)
	ys := make([]*mpnat.Nat, p)
	for i := range xs {
		xs[i], ys[i] = x, y
	}
	m, _ := umm.New(8, 16)
	res, err := Simulate(m, gcd.Approximate, xs, ys, false)
	if err != nil {
		t.Fatal(err)
	}
	if f := res.UMM.CoalescedFraction(); f != 1.0 {
		t.Fatalf("identical-thread bulk not fully coalesced: %v", f)
	}
	perThreadOps := res.UMM.Accesses / p
	if want := m.ObliviousTime(p, perThreadOps); res.UMM.Time != want {
		t.Fatalf("time %d, Theorem 1 says %d", res.UMM.Time, want)
	}
}

// TestSimulateSemiOblivious: with independent random pairs the bulk
// execution of Approximate is semi-oblivious - mostly coalesced but not
// entirely. The coalesced fraction must stay high while not reaching 1.
func TestSimulateSemiOblivious(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	const p = 32
	xs := make([]*mpnat.Nat, p)
	ys := make([]*mpnat.Nat, p)
	for i := range xs {
		xs[i] = randOddNat(r, 256)
		ys[i] = randOddNat(r, 256)
	}
	m, _ := umm.New(8, 16)
	res, err := Simulate(m, gcd.Approximate, xs, ys, false)
	if err != nil {
		t.Fatal(err)
	}
	f := res.UMM.CoalescedFraction()
	if f >= 1.0 {
		t.Fatalf("independent inputs cannot be fully coalesced (%v)", f)
	}
	if f < 0.05 {
		t.Fatalf("coalesced fraction %v implausibly low for semi-oblivious execution", f)
	}
	if res.Stats.Iterations == 0 || res.TimePerGCD <= 0 {
		t.Fatalf("missing stats: %+v", res)
	}
}

// TestSimulateEarlyCheaper: early termination must reduce simulated time.
func TestSimulateEarlyCheaper(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	const p = 16
	xs := make([]*mpnat.Nat, p)
	ys := make([]*mpnat.Nat, p)
	for i := range xs {
		xs[i] = randOddNat(r, 256)
		ys[i] = randOddNat(r, 256)
	}
	m, _ := umm.New(8, 16)
	full, err := Simulate(m, gcd.Approximate, xs, ys, false)
	if err != nil {
		t.Fatal(err)
	}
	early, err := Simulate(m, gcd.Approximate, xs, ys, true)
	if err != nil {
		t.Fatal(err)
	}
	if early.UMM.Time >= full.UMM.Time {
		t.Fatalf("early (%d) not cheaper than full (%d)", early.UMM.Time, full.UMM.Time)
	}
}

// TestSimulateAlgorithmRanking: on the UMM the paper's ranking must hold:
// Approximate beats FastBinary beats Binary in simulated time per GCD.
func TestSimulateAlgorithmRanking(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	const p = 16
	xs := make([]*mpnat.Nat, p)
	ys := make([]*mpnat.Nat, p)
	for i := range xs {
		xs[i] = randOddNat(r, 512)
		ys[i] = randOddNat(r, 512)
	}
	m, _ := umm.New(32, 64)
	times := map[gcd.Algorithm]float64{}
	for _, alg := range []gcd.Algorithm{gcd.Binary, gcd.FastBinary, gcd.Approximate} {
		res, err := Simulate(m, alg, xs, ys, true)
		if err != nil {
			t.Fatal(err)
		}
		times[alg] = res.TimePerGCD
	}
	if !(times[gcd.Approximate] < times[gcd.FastBinary] && times[gcd.FastBinary] < times[gcd.Binary]) {
		t.Fatalf("UMM ranking violated: E=%.0f D=%.0f C=%.0f",
			times[gcd.Approximate], times[gcd.FastBinary], times[gcd.Binary])
	}
}

func TestSimulateValidation(t *testing.T) {
	m, _ := umm.New(4, 4)
	odd := mpnat.New(15)
	if _, err := Simulate(m, gcd.Approximate, nil, nil, false); err == nil {
		t.Error("empty slices accepted")
	}
	if _, err := Simulate(m, gcd.Approximate, []*mpnat.Nat{odd}, []*mpnat.Nat{odd, odd}, false); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Simulate(m, gcd.Approximate, []*mpnat.Nat{mpnat.New(4)}, []*mpnat.Nat{odd}, false); err == nil {
		t.Error("even operand accepted")
	}
}

func BenchmarkAllPairs128x512(b *testing.B) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: 128, Bits: 512, Seed: 1, Pseudo: true})
	if err != nil {
		b.Fatal(err)
	}
	moduli := c.Moduli()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AllPairs(moduli, Config{Algorithm: gcd.Approximate, Early: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestIncrementalCoversExactlyNewPairs: old-only factors are skipped,
// everything touching a new modulus is found, and the union with an
// old-only run equals the full all-pairs run.
func TestIncrementalCoversExactlyNewPairs(t *testing.T) {
	c := corpus(t, 20, 128, 4, 30)
	moduli := c.Moduli()
	old, newer := moduli[:12], moduli[12:]

	full, err := AllPairs(moduli, Config{Algorithm: gcd.Approximate, Early: true})
	if err != nil {
		t.Fatal(err)
	}
	oldOnly, err := AllPairs(old, Config{Algorithm: gcd.Approximate, Early: true})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Incremental(old, newer, Config{Algorithm: gcd.Approximate, Early: true})
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := int64(len(newer))*int64(len(old)) + int64(len(newer))*int64(len(newer)-1)/2
	if inc.Pairs != wantPairs {
		t.Fatalf("incremental computed %d pairs, want %d", inc.Pairs, wantPairs)
	}
	// Union check.
	key := func(f Factor) [2]int { return [2]int{f.I, f.J} }
	union := map[[2]int]string{}
	for _, f := range oldOnly.Factors {
		union[key(f)] = f.P.Hex()
	}
	for _, f := range inc.Factors {
		if _, dup := union[key(f)]; dup {
			t.Fatalf("pair %v found by both runs", key(f))
		}
		union[key(f)] = f.P.Hex()
	}
	if len(union) != len(full.Factors) {
		t.Fatalf("union has %d factors, full run %d", len(union), len(full.Factors))
	}
	for _, f := range full.Factors {
		if union[key(f)] != f.P.Hex() {
			t.Fatalf("pair %v missing or wrong in union", key(f))
		}
	}
	// Every incremental factor touches a new modulus.
	for _, f := range inc.Factors {
		if f.I < len(old) && f.J < len(old) {
			t.Fatalf("incremental computed old-only pair %v", key(f))
		}
	}
}

func TestIncrementalNoOldCorpus(t *testing.T) {
	c := corpus(t, 10, 128, 2, 31)
	inc, err := Incremental(nil, c.Moduli(), Config{Algorithm: gcd.Approximate, Early: true})
	if err != nil {
		t.Fatal(err)
	}
	all, err := AllPairs(c.Moduli(), Config{Algorithm: gcd.Approximate, Early: true})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Pairs != all.Pairs || len(inc.Factors) != len(all.Factors) {
		t.Fatalf("empty-old incremental differs from all-pairs")
	}
}

func TestIncrementalValidation(t *testing.T) {
	odd := mpnat.New(15)
	if _, err := Incremental([]*mpnat.Nat{odd}, nil, Config{}); err == nil {
		t.Error("no new moduli accepted")
	}
	if _, err := Incremental([]*mpnat.Nat{mpnat.New(4)}, []*mpnat.Nat{odd}, Config{}); err == nil {
		t.Error("even old modulus accepted")
	}
	if _, err := Incremental(nil, []*mpnat.Nat{&mpnat.Nat{}}, Config{}); err == nil {
		t.Error("zero new modulus accepted")
	}
}
