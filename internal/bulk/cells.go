package bulk

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/subprod"
)

// CellRunner exposes the hybrid engine's tile cells as individually
// executable work units, which is what a fleet worker needs: the
// coordinator leases cell indices, the worker computes each leased cell
// with RunUnit, and the resulting checkpoint.Record is exactly what a
// local HybridContext run would have journaled for the same unit — so a
// journal assembled cell-by-cell across machines is indistinguishable
// from a single-process one, and the fleet inherits the hybrid engine's
// findings-identity guarantee.
//
// A CellRunner is NOT safe for concurrent use: it owns one pairRunner
// (one worker's scratch space and lane batcher). A process that wants
// intra-worker parallelism runs several CellRunners.
type CellRunner struct {
	plan       *hybridPlan
	cfg        Config // stable copy; pr holds a pointer into it
	moduli     []*mpnat.Nat
	cache      *subprod.Cache
	pr         pairRunner
	hm         *hybridMetrics
	metrics    *runMetrics
	seq        atomic.Int64
	spanParent string
}

// NewCellRunner validates the corpus and configuration and builds the
// cell grid. Checkpoint and Resume are ignored here — journaling is the
// coordinator's job in a fleet run, so set them there, not on workers.
func NewCellRunner(moduli []*mpnat.Nat, cfg Config) (*CellRunner, error) {
	plan, err := planHybrid(moduli, cfg)
	if err != nil {
		return nil, err
	}
	r := &CellRunner{
		plan:   plan,
		cfg:    cfg,
		moduli: moduli,
		cache:  subprod.NewCache(cfg.SubprodBudget),
	}
	r.cfg.Checkpoint = nil
	r.cfg.Resume = nil
	r.metrics = newRunMetrics(r.cfg.Metrics, r.cfg.Algorithm)
	r.hm = newHybridMetrics(r.cfg.Metrics)
	r.pr = newPairRunner(&r.cfg, plan.maxBits, moduli, &r.seq, r.metrics)
	return r, nil
}

// Units returns the number of cells in the grid.
func (r *CellRunner) Units() int { return len(r.plan.cells) }

// TotalPairs returns the pair count of the full scan.
func (r *CellRunner) TotalPairs() int64 { return r.plan.total }

// Header returns the journal header of this run — identical to what
// HybridJournalHeader returns for the same inputs, so a coordinator and
// its workers agree on the run's fingerprint by construction.
func (r *CellRunner) Header() checkpoint.Header { return r.plan.header }

// Quarantined returns the input moduli excluded under Config.Quarantine.
func (r *CellRunner) Quarantined() []Quarantined { return r.plan.bad }

// SetSpanParent sets the span ID each subsequent cell span is emitted
// under — a fleet worker points this at the coordinator's run span
// (LeaseResponse.ParentSpan), so cells computed here parent correctly
// in the merged fleet trace. "" emits root spans. No-op without a
// Config.Trace.
func (r *CellRunner) SetSpanParent(parent string) { r.spanParent = parent }

// RunUnit computes one cell and returns its journal record. A panic
// anywhere inside the cell — including one raised by the fault hook,
// which is how the chaos campaign poisons specific cells — is recovered
// and returned as an error, so a fleet worker can report the failure
// instead of dying; the runner is rebuilt and stays usable. Contexts
// are honored between units only: RunUnit checks ctx on entry (a cell
// is small by design, and a journaled record must cover a whole cell).
func (r *CellRunner) RunUnit(ctx context.Context, unit int) (rec checkpoint.Record, err error) {
	if unit < 0 || unit >= len(r.plan.cells) {
		return checkpoint.Record{}, fmt.Errorf("bulk: cell %d out of range [0,%d)", unit, len(r.plan.cells))
	}
	if cerr := ctx.Err(); cerr != nil {
		return checkpoint.Record{}, cerr
	}
	defer func() {
		if p := recover(); p != nil {
			// The kernel may have been interrupted mid-update: rebuild the
			// per-worker runner before the next cell.
			r.pr = newPairRunner(&r.cfg, r.plan.maxBits, r.moduli, &r.seq, r.metrics)
			err = fmt.Errorf("bulk: cell %d: %v", unit, p)
		}
	}()
	r.cfg.Fault.OnBlock(unit)
	c := r.plan.cells[unit]
	// The cell span is emitted only on success: a failed or abandoned
	// cell must not put a span in the fleet trace (the coordinator keeps
	// exactly one cell span per completed cell).
	span := r.cfg.Trace.StartSpanUnder(r.spanParent, "cell", "cell", unit, "a", c.A, "b", c.B)
	start := time.Now()
	var blk blockOut
	r.pr.runCell(r.plan, c, r.cache, r.hm, &blk)
	dur := time.Since(start)
	r.metrics.observeBlock(&blk, dur)
	r.hm.observeCell(dur)
	span.End("pairs", blk.pairs, "factors", len(blk.factors), "bad_pairs", len(blk.bad))
	return blk.record(unit), nil
}

// Assemble converts completed unit records — typically the coordinator's
// journal at the end of a fleet run — into the Result an uninterrupted
// local HybridContext run over the same corpus would return (modulo
// Stats and timing, which stay with whichever process computed the
// pairs). Records carrying BadCell (fleet-quarantined units) contribute
// nothing; their pairs are simply missing from Result.Pairs, which is
// how callers detect an incomplete scan.
func (r *CellRunner) Assemble(records map[int]checkpoint.Record) (*Result, error) {
	factors, bad, pairs, err := restoreJournal(&checkpoint.State{Done: records})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Factors:     factors,
		BadPairs:    bad,
		Pairs:       pairs,
		Total:       r.plan.total,
		Quarantined: r.plan.bad,
	}
	sortFactors(res.Factors)
	sortBadPairs(res.BadPairs)
	return res, nil
}
