package bulk

import (
	"fmt"
	"testing"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/rsakey"
)

// BenchmarkHybrid measures the tiled product-filter engine on a
// 4096-moduli 512-bit planted corpus (512 moduli under -short), across
// tile widths. Unlike BenchmarkBatchGCD's pseudo corpus this one uses
// real semiprimes: pseudo moduli are plain random odd values whose
// ubiquitous shared small primes make almost every row a legitimate
// filter hit, while the filter's selectivity — the whole point of the
// engine — shows only on RSA-structured (pairwise coprime outside the
// planted pairs) inputs. Alongside wall-clock it reports the two counts
// that justify the engine: full per-pair GCD descents (via the
// gcd.Metrics iteration histogram, which the filter GCDs bypass) and
// filter GCDs, and it fails outright if the filter does not cut full
// GCD invocations at least 3x below the all-pairs schedule — the
// soundness-preserving speedup the design claims.
func BenchmarkHybrid(b *testing.B) {
	count := 4096
	if testing.Short() {
		count = 512
	}
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: count, Bits: 512, WeakPairs: 8, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	ms := c.Moduli()
	totalPairs := int64(count) * int64(count-1) / 2

	var refFactors []string
	for _, tile := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("tile=%d", tile), func(b *testing.B) {
			b.ReportAllocs()
			var descended, filters float64
			for i := 0; i < b.N; i++ {
				reg := obs.NewRegistry()
				res, err := Hybrid(ms, Config{
					Config:    engine.Config{Workers: 8, Metrics: reg},
					Algorithm: gcd.Approximate, Early: true, TileSize: tile,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Pairs != totalPairs {
					b.Fatalf("covered %d of %d pairs", res.Pairs, totalPairs)
				}
				// Findings must be identical at every tile width.
				keys := factorKeys(res.Factors)
				if refFactors == nil {
					refFactors = keys
					if len(keys) != len(c.Planted) {
						b.Fatalf("found %d factors, planted %d", len(keys), len(c.Planted))
					}
				} else if fmt.Sprint(keys) != fmt.Sprint(refFactors) {
					b.Fatalf("tile=%d: factors diverge from the first tile size", tile)
				}
				snap := reg.Snapshot()
				d := snap.Histograms[gcd.IterationsMetric(gcd.Approximate)].Count
				if int64(d)*3 > totalPairs {
					b.Fatalf("filter too weak: %d full GCDs for %d pairs (need at least 3x fewer)", d, totalPairs)
				}
				descended += float64(d)
				filters += float64(snap.Counters["bulk_hybrid_filter_gcds_total"])
			}
			b.ReportMetric(descended/float64(b.N), "descents/op")
			b.ReportMetric(filters/float64(b.N), "filters/op")
			b.ReportMetric(float64(totalPairs), "pairs/op")
		})
	}
}
