package bulk

import (
	"fmt"
	"io"
	"sort"
	"testing"
	"time"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/rsakey"
)

// BenchmarkHybrid measures the tiled product-filter engine on a
// 4096-moduli 512-bit planted corpus (512 moduli under -short), across
// tile widths. Unlike BenchmarkBatchGCD's pseudo corpus this one uses
// real semiprimes: pseudo moduli are plain random odd values whose
// ubiquitous shared small primes make almost every row a legitimate
// filter hit, while the filter's selectivity — the whole point of the
// engine — shows only on RSA-structured (pairwise coprime outside the
// planted pairs) inputs. Alongside wall-clock it reports the two counts
// that justify the engine: full per-pair GCD descents (via the
// gcd.Metrics iteration histogram, which the filter GCDs bypass) and
// filter GCDs, and it fails outright if the filter does not cut full
// GCD invocations at least 3x below the all-pairs schedule — the
// soundness-preserving speedup the design claims.
func BenchmarkHybrid(b *testing.B) {
	count := 4096
	if testing.Short() {
		count = 512
	}
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: count, Bits: 512, WeakPairs: 8, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	ms := c.Moduli()
	totalPairs := int64(count) * int64(count-1) / 2

	var refFactors []string
	for _, tile := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("tile=%d", tile), func(b *testing.B) {
			b.ReportAllocs()
			var descended, filters float64
			for i := 0; i < b.N; i++ {
				reg := obs.NewRegistry()
				res, err := Hybrid(ms, Config{
					Config:    engine.Config{Workers: 8, Metrics: reg},
					Algorithm: gcd.Approximate, Early: true, TileSize: tile,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Pairs != totalPairs {
					b.Fatalf("covered %d of %d pairs", res.Pairs, totalPairs)
				}
				// Findings must be identical at every tile width.
				keys := factorKeys(res.Factors)
				if refFactors == nil {
					refFactors = keys
					if len(keys) != len(c.Planted) {
						b.Fatalf("found %d factors, planted %d", len(keys), len(c.Planted))
					}
				} else if fmt.Sprint(keys) != fmt.Sprint(refFactors) {
					b.Fatalf("tile=%d: factors diverge from the first tile size", tile)
				}
				snap := reg.Snapshot()
				d := snap.Histograms[gcd.IterationsMetric(gcd.Approximate)].Count
				if int64(d)*3 > totalPairs {
					b.Fatalf("filter too weak: %d full GCDs for %d pairs (need at least 3x fewer)", d, totalPairs)
				}
				descended += float64(d)
				filters += float64(snap.Counters["bulk_hybrid_filter_gcds_total"])
			}
			b.ReportMetric(descended/float64(b.N), "descents/op")
			b.ReportMetric(filters/float64(b.N), "filters/op")
			b.ReportMetric(float64(totalPairs), "pairs/op")
		})
	}
}

// BenchmarkHybridTraceOverhead enforces the tracing budget: the hybrid
// engine with a live tracer (serializing every span and event to
// io.Discard) must stay within 2% of the identical Trace=nil run.
// Tracing is one span per cell plus rare point events — never per-pair
// work — so its cost amortizes over each cell's tile×tile pairs; this
// guard keeps future instrumentation honest about that (it already
// caught the original emission path, which ran encoding/json's
// reflective marshal under the writer mutex — now a hand-rolled
// encoder outside the lock). Methodology: a single engine worker (parallel
// scheduling jitter on a shared machine dwarfs a 2% signal), timing
// adjacent bare/traced pairs so machine drift hits both sides equally,
// and taking the median of the paired differences so a co-tenant burst
// landing on one rep cannot decide the verdict.
func BenchmarkHybridTraceOverhead(b *testing.B) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: 128, Bits: 512, WeakPairs: 4, Seed: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	ms := c.Moduli()
	run := func(tr *obs.Tracer) time.Duration {
		t0 := time.Now()
		res, err := Hybrid(ms, Config{
			Config:    engine.Config{Workers: 1, Metrics: obs.NewRegistry(), Trace: tr},
			Algorithm: gcd.Approximate, Early: true, TileSize: 16,
		})
		d := time.Since(t0)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Factors) != len(c.Planted) {
			b.Fatalf("found %d factors, planted %d", len(res.Factors), len(c.Planted))
		}
		return d
	}

	// Warm both paths off the clock: allocators, page cache, JIT-ish
	// effects like branch predictors settling.
	run(nil)
	run(obs.NewTracer(io.Discard))

	const reps = 25
	var diffs []float64
	var bareTotal float64
	for i := 0; i < b.N; i++ {
		for r := 0; r < reps; r++ {
			bare := run(nil)
			traced := run(obs.NewTracer(io.Discard))
			diffs = append(diffs, float64(traced-bare))
			bareTotal += float64(bare)
		}
	}
	sort.Float64s(diffs)
	median := diffs[len(diffs)/2]
	meanBare := bareTotal / float64(len(diffs))
	overhead := 100 * median / meanBare
	b.ReportMetric(overhead, "%overhead")
	if overhead > 2.0 {
		b.Fatalf("tracing overhead %.2f%% exceeds the 2%% budget (median pair diff %v over mean bare %v)",
			overhead, time.Duration(median), time.Duration(meanBare))
	}
}
