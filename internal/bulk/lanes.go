package bulk

import (
	"bulkgcd/internal/lanes"
)

// This file adapts the lane-batched kernel (internal/lanes) to the
// pairRunner contract. Under engine.KernelLanes, pairs queue up during a
// work unit (a schedule block or a hybrid cell) and execute as one
// lockstep batch when the unit flushes, so checkpointing, accounting and
// cancellation see exactly the scalar per-unit semantics: a unit is
// journaled only after every one of its pairs — queued or inline — has a
// final verdict. The findings are byte-identical to the scalar kernel
// (DESIGN.md section 5e gives the argument); only throughput and the
// iteration/memory statistics differ.

// laneBatcher is one worker's lane kernel plus its pending-pair queue.
type laneBatcher struct {
	kernel  *lanes.Kernel
	queue   []lanes.Pair
	width   int
	maxBits int
	metrics *lanesMetrics
	lastTel lanes.Telemetry // telemetry snapshot at the previous flush
}

func newLaneBatcher(width, maxBits int, metrics *lanesMetrics) *laneBatcher {
	if width < 1 {
		width = lanes.DefaultWidth
	}
	return &laneBatcher{
		kernel:  lanes.NewKernel(width, maxBits),
		width:   width,
		maxBits: maxBits,
		metrics: metrics,
	}
}

// pair computes or queues one pair according to the configured kernel.
// Lanes-mode callers must flush before sealing the work unit.
func (p *pairRunner) pair(a, b int, out *blockOut) {
	if p.lanes == nil {
		p.run(a, b, out)
		return
	}
	p.enqueue(a, b, out)
}

// enqueue adds a pair to the lane batch. The fault hook fires here — the
// same per-pair sequence points as the scalar path — and a hook panic
// quarantines the pair without enqueueing it.
func (p *pairRunner) enqueue(a, b int, out *blockOut) {
	if p.cfg.Fault != nil && !p.firePairHook(a, b, out) {
		return
	}
	x, y := p.moduli[a], p.moduli[b]
	early := 0
	if p.cfg.Early {
		early = earlyBitsFor(x, y)
	}
	p.lanes.queue = append(p.lanes.queue, lanes.Pair{A: a, B: b, X: x, Y: y, Early: early})
}

// firePairHook runs the fault hook for (a, b); a panic quarantines the
// pair and reports false.
func (p *pairRunner) firePairHook(a, b int, out *blockOut) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			p.quarantine(a, b, r, out)
		}
	}()
	p.cfg.Fault.OnPair(p.seq.Add(1)-1, a, b)
	return true
}

// flush executes the queued batch through the lane kernel and folds the
// results into out. A kernel panic rebuilds the kernel and falls back to
// the scalar kernel for the whole batch, pair by pair, so one poisoned
// input quarantines only itself and every other queued pair still gets
// its exact result.
func (p *pairRunner) flush(out *blockOut) {
	lb := p.lanes
	if lb == nil || len(lb.queue) == 0 {
		return
	}
	queue := lb.queue
	lb.queue = queue[:0]
	results, ok := lb.runBatch(queue)
	if !ok {
		p.cfg.Trace.Event("lanes_fallback", "pairs", len(queue))
		for i := range queue {
			p.fallbackPair(queue[i].A, queue[i].B, out)
		}
		return
	}
	for i := range results {
		r := &results[i]
		p.metrics.observePair(&r.Stats)
		out.stats.Add(&r.Stats)
		out.pairs++
		if r.G != nil && !r.G.IsOne() {
			out.factors = append(out.factors, Factor{I: r.A, J: r.B, P: r.G})
		}
	}
	tel := lb.kernel.Telemetry
	lb.metrics.observeBatch(tel, lb.lastTel)
	lb.lastTel = tel
}

// runBatch runs the kernel under panic recovery. On a panic the kernel is
// rebuilt — it may have been interrupted mid-update — and ok is false.
func (lb *laneBatcher) runBatch(queue []lanes.Pair) (results []lanes.Result, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			lb.kernel = lanes.NewKernel(lb.width, lb.maxBits)
			lb.lastTel = lanes.Telemetry{}
			results, ok = nil, false
		}
	}()
	return lb.kernel.Run(queue), true
}

// fallbackPair is the scalar path for one pair of a failed lane batch:
// per-pair recover, no fault hook (it already fired at enqueue).
func (p *pairRunner) fallbackPair(a, b int, out *blockOut) {
	defer func() {
		if r := recover(); r != nil {
			p.quarantine(a, b, r, out)
		}
	}()
	p.computePair(a, b, out)
}
