package bulk

import "bulkgcd/internal/obs"

// Metric documentation, registered from init so any process linking the
// bulk engine serves `# HELP` lines for its families and the doc-parity
// test can diff this inventory against DESIGN.md.
func init() {
	for name, help := range map[string]string{
		"bulk_pairs_total":                   "pair GCD computations finished",
		"bulk_blocks_total":                  "scan blocks completed",
		"bulk_factors_total":                 "nontrivial factors found by pair scans",
		"bulk_early_exits_total":             "pairs stopped at the s/2 early-exit threshold",
		"bulk_bad_pairs_total":               "pair computations quarantined after a worker panic",
		"bulk_quarantined_moduli_total":      "input moduli excluded before the scan",
		"bulk_resumed_pairs_total":           "pairs restored from a checkpoint instead of recomputed",
		"bulk_block_seconds":                 "wall time per scan block",
		"bulk_checkpoint_flush_seconds":      "wall time per checkpoint journal flush",
		"bulk_workers":                       "worker goroutines configured for the scan",
		"bulk_pairs_per_second":              "recent scan throughput",
		"bulk_worker_utilization":            "fraction of worker time spent computing",
		"bulk_hybrid_filter_gcds_total":      "product-tree filter GCDs taken at tile roots",
		"bulk_hybrid_tile_hits_total":        "tiles whose filter GCD was nontrivial",
		"bulk_hybrid_tile_skips_total":       "tiles skipped because the filter GCD was 1",
		"bulk_hybrid_descended_pairs_total":  "pairs scanned inside hit tiles",
		"bulk_hybrid_skipped_pairs_total":    "pairs proven coprime by a skipped tile",
		"bulk_hybrid_filter_seconds":         "wall time per tile filter GCD",
		"bulk_hybrid_cell_seconds":           "wall time per hybrid cell",
		"bulk_subprod_cache_hits_total":      "subproduct cache lookups served",
		"bulk_subprod_cache_misses_total":    "subproduct cache lookups that computed",
		"bulk_subprod_cache_evictions_total": "subproduct cache entries evicted",
		"bulk_subprod_cache_bytes":           "bytes held by the subproduct cache",
		"bulk_lanes_batches_total":           "lane batches launched by the lockstep kernel",
		"bulk_lanes_supersteps_total":        "lockstep supersteps executed",
		"bulk_lanes_retirements_total":       "lanes retired with a finished GCD",
		"bulk_lanes_refills_total":           "lane refills with fresh pairs",
		"bulk_lanes_occupancy":               "fraction of lanes holding live pairs",
	} {
		obs.RegisterHelp(name, help)
	}
}
