package bulk

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

// factorKeys renders a factor list in a canonical comparable form.
func factorKeys(fs []Factor) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprintf("%d,%d,%s", f.I, f.J, f.P.Hex())
	}
	return out
}

func sameFactors(t *testing.T, got, want []Factor) {
	t.Helper()
	g, w := factorKeys(got), factorKeys(want)
	if len(g) != len(w) {
		t.Fatalf("factor count %d, want %d\ngot  %v\nwant %v", len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("factor %d = %s, want %s", i, g[i], w[i])
		}
	}
}

// TestAllPairsCancelPartial cancels runs at several points and checks the
// partial-result contract: Canceled set, the pair count bounded by the
// total, and every reported factor also found by a clean run.
func TestAllPairsCancelPartial(t *testing.T) {
	c := corpus(t, 20, 64, 3, 41)
	clean, err := AllPairs(c.Moduli(), Config{Algorithm: gcd.Approximate, Early: true, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, k := range factorKeys(clean.Factors) {
		want[k] = true
	}
	for _, at := range []int64{0, 1, 17, 50, 120} {
		ctx, cancel := context.WithCancel(context.Background())
		plan := faultinject.NewPlan()
		plan.CancelAtPair = at
		plan.Cancel = cancel
		res, err := AllPairsContext(ctx, c.Moduli(), Config{
			Config:    engine.Config{Workers: 3, Fault: plan.Hook()},
			Algorithm: gcd.Approximate, Early: true, GroupSize: 4,
		})
		cancel()
		if err != nil {
			t.Fatalf("cancel at %d: %v", at, err)
		}
		if !res.Canceled {
			t.Fatalf("cancel at %d: Canceled not set", at)
		}
		if res.Pairs > clean.Pairs {
			t.Fatalf("cancel at %d: %d pairs exceeds total %d", at, res.Pairs, clean.Pairs)
		}
		if res.Total != clean.Pairs {
			t.Fatalf("cancel at %d: Total = %d, want %d", at, res.Total, clean.Pairs)
		}
		for _, k := range factorKeys(res.Factors) {
			if !want[k] {
				t.Fatalf("cancel at %d: spurious factor %s", at, k)
			}
		}
	}
}

// TestAllPairsCheckpointResumeEquivalence is the PR's core acceptance
// property at the engine level: a run killed at an arbitrary point and
// resumed from its journal produces findings identical to an
// uninterrupted run, over several kill points and worker counts.
func TestAllPairsCheckpointResumeEquivalence(t *testing.T) {
	c := corpus(t, 22, 64, 4, 42)
	cfg := Config{Algorithm: gcd.Approximate, Early: true, GroupSize: 4}
	clean, err := AllPairs(c.Moduli(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, killAt := range []int64{0, 3, 40, 90} {
		path := filepath.Join(t.TempDir(), "run.jsonl")

		// Interrupted first run.
		w, err := checkpoint.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		plan := faultinject.NewPlan()
		plan.CancelAtPair = killAt
		plan.Cancel = cancel
		kcfg := cfg
		kcfg.Workers = 3
		kcfg.Checkpoint = w
		kcfg.Fault = plan.Hook()
		res, err := AllPairsContext(ctx, c.Moduli(), kcfg)
		cancel()
		if err != nil {
			t.Fatalf("kill at %d: %v", killAt, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if !res.Canceled {
			t.Fatalf("kill at %d: run completed before the cancel fired", killAt)
		}

		// Resume until done (a resumed run may be canceled again only if
		// another fault is injected; here it must finish in one go).
		st, err := checkpoint.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Pairs(); got != res.Pairs {
			t.Fatalf("kill at %d: journal has %d pairs, result reported %d", killAt, got, res.Pairs)
		}
		w2, err := checkpoint.OpenAppend(path)
		if err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.Workers = 2
		rcfg.Resume = st
		rcfg.Checkpoint = w2
		resumed, err := AllPairs(c.Moduli(), rcfg)
		if err != nil {
			t.Fatalf("resume after kill at %d: %v", killAt, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		if resumed.Canceled {
			t.Fatalf("resumed run canceled")
		}
		if resumed.Pairs != clean.Pairs {
			t.Fatalf("resumed run computed %d pairs, want %d", resumed.Pairs, clean.Pairs)
		}
		if resumed.ResumedPairs != res.Pairs {
			t.Fatalf("resumed run replayed %d pairs, journal had %d", resumed.ResumedPairs, res.Pairs)
		}
		sameFactors(t, resumed.Factors, clean.Factors)
	}
}

// TestIncrementalCheckpointResumeEquivalence: same property for the
// incremental engine's stripe units.
func TestIncrementalCheckpointResumeEquivalence(t *testing.T) {
	c := corpus(t, 18, 64, 3, 43)
	moduli := c.Moduli()
	old, newer := moduli[:10], moduli[10:]
	cfg := Config{Algorithm: gcd.Approximate, Early: true}
	clean, err := Incremental(old, newer, cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "inc.jsonl")
	w, err := checkpoint.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	plan := faultinject.NewPlan()
	plan.CancelAtPair = 12
	plan.Cancel = cancel
	kcfg := cfg
	kcfg.Workers = 3
	kcfg.Checkpoint = w
	kcfg.Fault = plan.Hook()
	res, err := IncrementalContext(ctx, old, newer, kcfg)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !res.Canceled {
		t.Fatal("run completed before the cancel fired")
	}

	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := checkpoint.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Resume = st
	rcfg.Checkpoint = w2
	resumed, err := Incremental(old, newer, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if resumed.Canceled || resumed.Pairs != clean.Pairs {
		t.Fatalf("resumed: canceled=%v pairs=%d want %d", resumed.Canceled, resumed.Pairs, clean.Pairs)
	}
	sameFactors(t, resumed.Factors, clean.Factors)
}

// TestResumeFingerprintMismatch: a journal from a different corpus or
// configuration must be rejected, not silently merged.
func TestResumeFingerprintMismatch(t *testing.T) {
	c1 := corpus(t, 8, 64, 1, 44)
	c2 := corpus(t, 8, 64, 1, 45)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	w, err := checkpoint.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Config: engine.Config{Checkpoint: w}, Algorithm: gcd.Approximate, Early: true}
	if _, err := AllPairs(c1.Moduli(), cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Different corpus.
	if _, err := AllPairs(c2.Moduli(), Config{Config: engine.Config{Resume: st}, Algorithm: gcd.Approximate, Early: true}); err == nil {
		t.Error("journal accepted for a different corpus")
	}
	// Same corpus, different algorithm.
	if _, err := AllPairs(c1.Moduli(), Config{Config: engine.Config{Resume: st}, Algorithm: gcd.Binary, Early: true}); err == nil {
		t.Error("journal accepted for a different algorithm")
	}
	// Same corpus, same config: accepted and fully replayed.
	res, err := AllPairs(c1.Moduli(), Config{Config: engine.Config{Resume: st}, Algorithm: gcd.Approximate, Early: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedPairs != res.Pairs || res.Pairs != 8*7/2 {
		t.Fatalf("full replay: resumed %d of %d pairs", res.ResumedPairs, res.Pairs)
	}
}

// TestAllPairsPanicQuarantine: a panic injected at a value-targeted pair
// with gcd 1 is quarantined as a BadPair; the run completes and the
// findings are exactly those of a clean run.
func TestAllPairsPanicQuarantine(t *testing.T) {
	c := corpus(t, 16, 64, 2, 46)
	clean, err := AllPairs(c.Moduli(), Config{Algorithm: gcd.Approximate, Early: true, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a pair no planted factor touches, so quarantining it cannot
	// change the findings.
	planted := map[[2]int]bool{}
	for _, pp := range c.Planted {
		planted[[2]int{pp.I, pp.J}] = true
	}
	target := [2]int{-1, -1}
	for i := 0; i < 16 && target[0] < 0; i++ {
		for j := i + 1; j < 16; j++ {
			if !planted[[2]int{i, j}] {
				target = [2]int{i, j}
				break
			}
		}
	}
	plan := faultinject.NewPlan()
	plan.PanicAtIJ = &target
	res, err := AllPairs(c.Moduli(), Config{
		Config:    engine.Config{Workers: 3, Fault: plan.Hook()},
		Algorithm: gcd.Approximate, Early: true, GroupSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Canceled {
		t.Fatal("panic quarantine canceled the run")
	}
	if res.Pairs != clean.Pairs {
		t.Fatalf("run with quarantined pair computed %d pairs, want %d", res.Pairs, clean.Pairs)
	}
	if len(res.BadPairs) != 1 {
		t.Fatalf("BadPairs = %+v, want exactly one", res.BadPairs)
	}
	bp := res.BadPairs[0]
	if bp.I != target[0] || bp.J != target[1] {
		t.Fatalf("quarantined (%d,%d), injected at %v", bp.I, bp.J, target)
	}
	if bp.Err == "" {
		t.Fatal("BadPair.Err empty")
	}
	sameFactors(t, res.Factors, clean.Factors)
}

// TestOrdinalPanicDoesNotCrash: the ordinal-targeted panic (whichever
// pair lands on it) must be absorbed without crashing, for every engine
// shape.
func TestOrdinalPanicDoesNotCrash(t *testing.T) {
	c := corpus(t, 12, 64, 2, 47)
	for _, at := range []int64{0, 5, 30} {
		plan := faultinject.NewPlan()
		plan.PanicAtPair = at
		res, err := AllPairs(c.Moduli(), Config{
			Config:    engine.Config{Workers: 2, Fault: plan.Hook()},
			Algorithm: gcd.Approximate, Early: true, GroupSize: 3,
		})
		if err != nil {
			t.Fatalf("panic at ordinal %d: %v", at, err)
		}
		if res.Pairs != 12*11/2 {
			t.Fatalf("panic at ordinal %d: %d pairs", at, res.Pairs)
		}
		if len(res.BadPairs) != 1 {
			t.Fatalf("panic at ordinal %d: BadPairs = %+v", at, res.BadPairs)
		}
	}
}

// TestInputQuarantine: zero and even moduli are excised with per-index
// reports while the remaining corpus is scanned normally, and indices in
// the findings refer to the original corpus.
func TestInputQuarantine(t *testing.T) {
	c := corpus(t, 14, 64, 2, 48)
	moduli := c.Moduli()
	zero := &mpnat.Nat{}
	even := mpnat.New(4)
	bad := []*mpnat.Nat{zero, even}
	// Corrupt positions 0 and 5.
	corrupted := make([]*mpnat.Nat, 0, len(moduli)+2)
	corrupted = append(corrupted, bad[0])
	corrupted = append(corrupted, moduli[:4]...)
	corrupted = append(corrupted, bad[1])
	corrupted = append(corrupted, moduli[4:]...)

	// Without quarantine the corrupted corpus must fail.
	if _, err := AllPairs(corrupted, Config{Algorithm: gcd.Approximate}); err == nil {
		t.Fatal("corrupted corpus accepted without quarantine")
	}

	res, err := AllPairs(corrupted, Config{Algorithm: gcd.Approximate, Early: true, Quarantine: true, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 2 {
		t.Fatalf("Quarantined = %+v, want 2 entries", res.Quarantined)
	}
	if res.Quarantined[0].Index != 0 || res.Quarantined[0].Reason != "zero" {
		t.Fatalf("Quarantined[0] = %+v", res.Quarantined[0])
	}
	if res.Quarantined[1].Index != 5 || res.Quarantined[1].Reason != "even" {
		t.Fatalf("Quarantined[1] = %+v", res.Quarantined[1])
	}
	if want := int64(14 * 13 / 2); res.Pairs != want {
		t.Fatalf("computed %d pairs over the active set, want %d", res.Pairs, want)
	}
	// Map clean-run factors into the corrupted corpus's index space.
	remap := func(i int) int {
		if i < 4 {
			return i + 1 // after the zero at 0
		}
		return i + 2 // after zero and the even at 5
	}
	clean, err := AllPairs(moduli, Config{Algorithm: gcd.Approximate, Early: true, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Factor, len(clean.Factors))
	for i, f := range clean.Factors {
		want[i] = Factor{I: remap(f.I), J: remap(f.J), P: f.P}
	}
	sortFactors(want)
	sameFactors(t, res.Factors, want)
}

// TestIncrementalQuarantine covers the same contract for incremental runs,
// where old and new sets are validated separately but indexed globally.
func TestIncrementalQuarantine(t *testing.T) {
	c := corpus(t, 12, 64, 2, 49)
	moduli := c.Moduli()
	old := append([]*mpnat.Nat{mpnat.New(4)}, moduli[:6]...)   // even at global 0
	newer := append([]*mpnat.Nat{&mpnat.Nat{}}, moduli[6:]...) // zero at global 7
	res, err := Incremental(old, newer, Config{Algorithm: gcd.Approximate, Early: true, Quarantine: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 2 {
		t.Fatalf("Quarantined = %+v", res.Quarantined)
	}
	if res.Quarantined[0].Index != 0 || res.Quarantined[1].Index != 7 {
		t.Fatalf("quarantine indices %d,%d want 0,7", res.Quarantined[0].Index, res.Quarantined[1].Index)
	}
	want := int64(6)*6 + 6*5/2
	if res.Pairs != want {
		t.Fatalf("computed %d pairs, want %d", res.Pairs, want)
	}
}

// TestCancelBeforeStart: an already-canceled context yields an empty
// canceled result, not an error or a hang.
func TestCancelBeforeStart(t *testing.T) {
	c := corpus(t, 8, 64, 1, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AllPairsContext(ctx, c.Moduli(), Config{Algorithm: gcd.Approximate})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled || res.Pairs != 0 || len(res.Factors) != 0 {
		t.Fatalf("pre-canceled run: %+v", res)
	}
}
