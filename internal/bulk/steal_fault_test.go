package bulk

import (
	"context"
	"testing"
	"time"

	"bulkgcd/internal/engine"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/obs"
)

// TestStolenUnitPanicQuarantine is the fault drill for the
// work-stealing pool: the first worker's first unit is slowed so the
// second worker drains its own deque and steals the tail of the first
// worker's range — including the unit whose pair is rigged to panic.
// The quarantine contract must hold exactly as it does without
// stealing: one BadPair, full pair coverage, findings intact. The
// engine_steals_total counter proves the rebalancing actually happened
// (the slow unit makes the steal deterministic in practice: worker 0 is
// asleep while worker 1 runs dry).
func TestStolenUnitPanicQuarantine(t *testing.T) {
	c := corpus(t, 24, 64, 2, 19)
	moduli := c.Moduli()

	// Pair (20, 23) lives in the last all-pairs block — the top of
	// worker 0's static half under GroupSize 2, i.e. prime stealing
	// territory. It is coprime unless the corpus planted it (seed 19
	// plants pairs elsewhere), so quarantining it provably leaves the
	// findings unchanged.
	plan := faultinject.NewPlan()
	plan.PanicAtIJ = &[2]int{20, 23}
	plan.SlowUnit = 0
	plan.SlowFor = 50 * time.Millisecond

	reg := obs.NewRegistry()
	res, err := AllPairs(moduli, Config{
		Config:    engine.Config{Workers: 2, Fault: plan.Hook(), Metrics: reg},
		Algorithm: gcd.Approximate, Early: true, GroupSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BadPairs) != 1 || res.BadPairs[0].I != 20 || res.BadPairs[0].J != 23 {
		t.Fatalf("bad pairs = %+v, want exactly (20,23)", res.BadPairs)
	}
	if res.Pairs != res.Total {
		t.Fatalf("covered %d pairs, want %d", res.Pairs, res.Total)
	}
	if len(res.Factors) != 2 {
		t.Fatalf("found %d factors, want the 2 planted weak pairs", len(res.Factors))
	}
	for _, f := range res.Factors {
		if f.I == 20 && f.J == 23 {
			t.Fatal("seed 19 planted a weak pair at (20,23); pick a coprime target pair")
		}
	}
	if steals := reg.Snapshot().Counters["engine_steals_total"]; steals == 0 {
		t.Log("no steal occurred this run (legal: termination raced the thief); quarantine held regardless")
	}
}

// TestStolenUnitCancellation: the same skewed-pool shape, but the fault
// is a cancellation fired from a pair deep in the range that only a
// thief reaches while worker 0 is still asleep in its first unit. The
// run must come back Canceled — not hung, not errored — proving the
// pool's cancel path works when the observing worker is executing
// stolen work rather than its own partition.
func TestStolenUnitCancellation(t *testing.T) {
	c := corpus(t, 24, 64, 0, 23)
	moduli := c.Moduli()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plan := faultinject.NewPlan()
	plan.CancelAtPair = 40
	plan.Cancel = cancel
	plan.SlowUnit = 0
	plan.SlowFor = 50 * time.Millisecond

	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = AllPairsContext(ctx, moduli, Config{
			Config:    engine.Config{Workers: 2, Fault: plan.Hook(), Metrics: obs.NewRegistry()},
			Algorithm: gcd.Approximate, Early: true, GroupSize: 2,
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not terminate the pool (deadlock)")
	}
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled {
		t.Fatal("run not marked Canceled")
	}
	if res.Pairs >= res.Total {
		t.Fatalf("covered all %d pairs despite cancellation at pair 40", res.Total)
	}
}
