package bulk

import (
	"sync/atomic"
	"time"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/lanes"
	"bulkgcd/internal/obs"
	"bulkgcd/internal/subprod"
)

// runMetrics pre-resolves the bulk engine's obs instruments once per
// run, so workers update metrics with plain atomic operations. All
// fields are nil-safe (a nil registry yields nil instruments), letting
// the engine instrument unconditionally:
//
//	bulk_pairs_total                  GCDs computed (fresh pairs only)
//	bulk_blocks_total                 completed work units
//	bulk_factors_total                non-trivial GCDs found
//	bulk_early_exits_total            pairs stopped at the s/2 threshold
//	bulk_bad_pairs_total              pairs quarantined after a panic
//	bulk_quarantined_moduli_total     inputs excluded in quarantine mode
//	bulk_resumed_pairs_total          pairs replayed from a resume journal
//	bulk_block_seconds                per-block compute latency histogram
//	bulk_checkpoint_flush_seconds     per-record journal append latency
//	bulk_workers                      gauge: pool size of the current run
//	bulk_pairs_per_second             gauge: aggregate throughput, set at end
//	bulk_worker_utilization           gauge: busy time / (elapsed * workers)
//	gcd_<alg>_*                       per-algorithm instruments (gcd.Metrics)
type runMetrics struct {
	pairs       *obs.Counter
	blocks      *obs.Counter
	factors     *obs.Counter
	earlyExits  *obs.Counter
	badPairs    *obs.Counter
	quarantined *obs.Counter
	resumed     *obs.Counter

	blockSeconds *obs.Histogram
	ckptSeconds  *obs.Histogram

	workers     *obs.Gauge
	pairsPerSec *obs.Gauge
	utilization *obs.Gauge

	gcd *gcd.Metrics
}

// newRunMetrics resolves the instruments (nil registry gives a nil
// *runMetrics whose methods no-op).
func newRunMetrics(reg *obs.Registry, alg gcd.Algorithm) *runMetrics {
	if reg == nil {
		return nil
	}
	return &runMetrics{
		pairs:        reg.Counter("bulk_pairs_total"),
		blocks:       reg.Counter("bulk_blocks_total"),
		factors:      reg.Counter("bulk_factors_total"),
		earlyExits:   reg.Counter("bulk_early_exits_total"),
		badPairs:     reg.Counter("bulk_bad_pairs_total"),
		quarantined:  reg.Counter("bulk_quarantined_moduli_total"),
		resumed:      reg.Counter("bulk_resumed_pairs_total"),
		blockSeconds: reg.Histogram("bulk_block_seconds", obs.DurationBuckets()),
		ckptSeconds:  reg.Histogram("bulk_checkpoint_flush_seconds", obs.DurationBuckets()),
		workers:      reg.Gauge("bulk_workers"),
		pairsPerSec:  reg.Gauge("bulk_pairs_per_second"),
		utilization:  reg.Gauge("bulk_worker_utilization"),
		gcd:          gcd.NewMetrics(reg, alg),
	}
}

// begin records the run shape known before workers start.
func (m *runMetrics) begin(workers int, quarantined int, resumedPairs int64) {
	if m == nil {
		return
	}
	m.workers.Set(float64(workers))
	m.quarantined.Add(int64(quarantined))
	m.resumed.Add(resumedPairs)
}

// observeBlock folds one completed work unit in.
func (m *runMetrics) observeBlock(blk *blockOut, dur time.Duration) {
	if m == nil {
		return
	}
	m.pairs.Add(blk.pairs)
	m.blocks.Inc()
	m.factors.Add(int64(len(blk.factors)))
	m.badPairs.Add(int64(len(blk.bad)))
	m.blockSeconds.ObserveDuration(int64(dur))
}

// observePair records one GCD computation's statistics: the
// per-algorithm instruments plus the engine-level early-exit counter.
func (m *runMetrics) observePair(st *gcd.Stats) {
	if m == nil {
		return
	}
	m.gcd.Observe(st)
	if st.EarlyTerminated {
		m.earlyExits.Inc()
	}
}

// observeCheckpoint records one journal append's flush latency.
func (m *runMetrics) observeCheckpoint(dur time.Duration) {
	if m == nil {
		return
	}
	m.ckptSeconds.ObserveDuration(int64(dur))
}

// hybridMetrics holds the instruments specific to the tiled
// product-filter engine, alongside the shared runMetrics (for the
// hybrid, bulk_pairs_total counts covered pairs: descended plus
// filter-skipped). All nil-safe:
//
//	bulk_hybrid_filter_gcds_total     subproduct filter divisions+GCDs run
//	bulk_hybrid_tile_hits_total       filter rows that descended
//	bulk_hybrid_tile_skips_total      filter rows proven coprime
//	bulk_hybrid_descended_pairs_total pairs computed exactly after a hit
//	bulk_hybrid_skipped_pairs_total   pairs skipped as proven coprime
//	bulk_hybrid_filter_seconds        per-row filter latency histogram
//	bulk_hybrid_cell_seconds          per-cell latency histogram
//	bulk_subprod_cache_hits_total     tile subproduct cache hits
//	bulk_subprod_cache_misses_total   tile subproduct cache misses
//	bulk_subprod_cache_evictions_total entries evicted to hold the budget
//	bulk_subprod_cache_bytes          gauge: final cached payload size
type hybridMetrics struct {
	filterGCDs *obs.Counter
	tileHits   *obs.Counter
	tileSkips  *obs.Counter
	descended  *obs.Counter
	skipped    *obs.Counter

	filterSeconds *obs.Histogram
	cellSeconds   *obs.Histogram

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheBytes     *obs.Gauge
}

func newHybridMetrics(reg *obs.Registry) *hybridMetrics {
	if reg == nil {
		return nil
	}
	return &hybridMetrics{
		filterGCDs:     reg.Counter("bulk_hybrid_filter_gcds_total"),
		tileHits:       reg.Counter("bulk_hybrid_tile_hits_total"),
		tileSkips:      reg.Counter("bulk_hybrid_tile_skips_total"),
		descended:      reg.Counter("bulk_hybrid_descended_pairs_total"),
		skipped:        reg.Counter("bulk_hybrid_skipped_pairs_total"),
		filterSeconds:  reg.Histogram("bulk_hybrid_filter_seconds", obs.DurationBuckets()),
		cellSeconds:    reg.Histogram("bulk_hybrid_cell_seconds", obs.DurationBuckets()),
		cacheHits:      reg.Counter("bulk_subprod_cache_hits_total"),
		cacheMisses:    reg.Counter("bulk_subprod_cache_misses_total"),
		cacheEvictions: reg.Counter("bulk_subprod_cache_evictions_total"),
		cacheBytes:     reg.Gauge("bulk_subprod_cache_bytes"),
	}
}

// observeFilter records one filter row's latency (the division plus the
// subproduct GCD).
func (m *hybridMetrics) observeFilter(dur time.Duration) {
	if m == nil {
		return
	}
	m.filterGCDs.Inc()
	m.filterSeconds.ObserveDuration(int64(dur))
}

// observeRow records a filter verdict: hit rows descend to width exact
// pairs, skip rows prove width pairs coprime.
func (m *hybridMetrics) observeRow(hit bool, width int64) {
	if m == nil {
		return
	}
	if hit {
		m.tileHits.Inc()
		m.descended.Add(width)
	} else {
		m.tileSkips.Inc()
		m.skipped.Add(width)
	}
}

// observeCell records one completed cell's latency.
func (m *hybridMetrics) observeCell(dur time.Duration) {
	if m == nil {
		return
	}
	m.cellSeconds.ObserveDuration(int64(dur))
}

// finish folds the subproduct cache's lifetime accounting in.
func (m *hybridMetrics) finish(st subprod.CacheStats) {
	if m == nil {
		return
	}
	m.cacheHits.Add(st.Hits)
	m.cacheMisses.Add(st.Misses)
	m.cacheEvictions.Add(st.Evictions)
	m.cacheBytes.Set(float64(st.Bytes))
}

// lanesMetrics holds the instruments of the lane-batched kernel, fed
// from each worker kernel's telemetry at every batch flush. All
// nil-safe:
//
//	bulk_lanes_batches_total      lockstep batches executed
//	bulk_lanes_supersteps_total   lockstep iterations over the lane matrix
//	bulk_lanes_retirements_total  lanes that finished a pair
//	bulk_lanes_refills_total      retired lanes reloaded mid-batch
//	bulk_lanes_occupancy          gauge: mean fraction of lanes active
type lanesMetrics struct {
	batches     *obs.Counter
	supersteps  *obs.Counter
	retirements *obs.Counter
	refills     *obs.Counter
	occupancy   *obs.Gauge

	// occupancy numerator/denominator accumulated across workers.
	activeLanes atomic.Int64
	laneSlots   atomic.Int64
}

func newLanesMetrics(reg *obs.Registry) *lanesMetrics {
	if reg == nil {
		return nil
	}
	return &lanesMetrics{
		batches:     reg.Counter("bulk_lanes_batches_total"),
		supersteps:  reg.Counter("bulk_lanes_supersteps_total"),
		retirements: reg.Counter("bulk_lanes_retirements_total"),
		refills:     reg.Counter("bulk_lanes_refills_total"),
		occupancy:   reg.Gauge("bulk_lanes_occupancy"),
	}
}

// observeBatch folds the telemetry delta of one flushed batch in and
// refreshes the run-wide mean occupancy gauge.
func (m *lanesMetrics) observeBatch(tel, prev lanes.Telemetry) {
	if m == nil {
		return
	}
	m.batches.Add(tel.Batches - prev.Batches)
	m.supersteps.Add(tel.Supersteps - prev.Supersteps)
	m.retirements.Add(tel.Retirements - prev.Retirements)
	m.refills.Add(tel.Refills - prev.Refills)
	active := m.activeLanes.Add(tel.ActiveLanes - prev.ActiveLanes)
	slots := m.laneSlots.Add(tel.LaneSlots - prev.LaneSlots)
	if slots > 0 {
		m.occupancy.Set(float64(active) / float64(slots))
	}
}

// finish derives the end-of-run gauges: aggregate throughput over the
// fresh pairs, and worker utilization — the fraction of worker-seconds
// actually spent inside blocks (busy covers GCD compute plus journal
// appends; the remainder is scheduling and pool ramp-down).
func (m *runMetrics) finish(res *Result, busy time.Duration) {
	if m == nil {
		return
	}
	if fresh := res.Pairs - res.ResumedPairs; fresh > 0 && res.Elapsed > 0 {
		m.pairsPerSec.Set(float64(fresh) / res.Elapsed.Seconds())
	}
	if res.Elapsed > 0 && res.Workers > 0 {
		m.utilization.Set(busy.Seconds() / (res.Elapsed.Seconds() * float64(res.Workers)))
	}
}
