package bulk

import (
	"context"
	"fmt"
	"testing"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/gcd"
)

// TestCellRunnerMatchesHybrid: running every cell individually through
// the exported CellRunner and assembling the records must reproduce the
// in-process hybrid run exactly — the property that makes a fleet of
// CellRunners equivalent to one local scan.
func TestCellRunnerMatchesHybrid(t *testing.T) {
	c := corpus(t, 40, 64, 4, 91)
	ms := c.Moduli()
	cfg := Config{Algorithm: gcd.Approximate, Early: true, TileSize: 8}
	base, err := Hybrid(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Factors) == 0 {
		t.Fatal("corpus with planted pairs produced no factors")
	}

	r, err := NewCellRunner(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := HybridJournalHeader(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header() != hdr {
		t.Fatalf("Header() = %+v, want %+v", r.Header(), hdr)
	}
	if r.Units() != hdr.Units || r.TotalPairs() != hdr.TotalPairs {
		t.Fatalf("Units/TotalPairs = %d/%d, header %d/%d",
			r.Units(), r.TotalPairs(), hdr.Units, hdr.TotalPairs)
	}

	records := map[int]checkpoint.Record{}
	for u := r.Units() - 1; u >= 0; u-- { // any order: cells are independent
		rec, err := r.RunUnit(context.Background(), u)
		if err != nil {
			t.Fatalf("cell %d: %v", u, err)
		}
		if rec.Unit != u {
			t.Fatalf("cell %d recorded as unit %d", u, rec.Unit)
		}
		records[u] = rec
	}
	res, err := r.Assemble(records)
	if err != nil {
		t.Fatal(err)
	}
	sameFactors(t, res.Factors, base.Factors)
	if res.Pairs != base.Pairs || res.Total != base.Total {
		t.Fatalf("pairs %d/%d, hybrid %d/%d", res.Pairs, res.Total, base.Pairs, base.Total)
	}
	if len(res.BadPairs) != 0 || len(res.Quarantined) != 0 {
		t.Fatalf("unexpected bad pairs %v or quarantined %v", res.BadPairs, res.Quarantined)
	}
}

// TestCellRunnerPanicRecovery: a panic injected into a cell surfaces as
// an error from RunUnit — the fleet's poisoned-cell signal — and the
// runner stays usable: retrying the same cell after the fault clears
// produces the correct record.
func TestCellRunnerPanicRecovery(t *testing.T) {
	c := corpus(t, 24, 64, 2, 92)
	ms := c.Moduli()
	failures := 0
	hook := &faultinject.Hook{Block: func(u int) {
		if u == 1 && failures < 2 {
			failures++
			panic(fmt.Sprintf("injected cell fault %d", failures))
		}
	}}
	cfg := Config{
		Config:    engine.Config{Fault: hook},
		Algorithm: gcd.Approximate, Early: true, TileSize: 6,
	}
	r, err := NewCellRunner(ms, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := r.RunUnit(context.Background(), 1); err == nil {
			t.Fatalf("attempt %d: injected panic did not surface", attempt)
		}
	}
	rec, err := r.RunUnit(context.Background(), 1)
	if err != nil {
		t.Fatalf("after faults cleared: %v", err)
	}
	clean, err := NewCellRunner(ms, Config{Algorithm: gcd.Approximate, Early: true, TileSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.RunUnit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Pairs != want.Pairs || len(rec.Factors) != len(want.Factors) {
		t.Fatalf("post-recovery record %+v, want %+v", rec, want)
	}
}

func TestCellRunnerEdges(t *testing.T) {
	c := corpus(t, 12, 64, 0, 93)
	r, err := NewCellRunner(c.Moduli(), Config{Algorithm: gcd.Approximate, TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunUnit(context.Background(), -1); err == nil {
		t.Fatal("negative unit accepted")
	}
	if _, err := r.RunUnit(context.Background(), r.Units()); err == nil {
		t.Fatal("out-of-range unit accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunUnit(ctx, 0); err != context.Canceled {
		t.Fatalf("canceled ctx: %v", err)
	}
}
