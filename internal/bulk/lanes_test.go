package bulk

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/engine"
	"bulkgcd/internal/faultinject"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/obs"
)

// lanesCfg returns a lanes-kernel Config over the given width.
func lanesCfg(width int) Config {
	return Config{
		Algorithm: gcd.Approximate, Early: true,
		Kernel: engine.KernelLanes, LaneWidth: width,
	}
}

// TestLanesMatchesScalarFindings is the wiring-level identity check: the
// all-pairs and hybrid engines produce byte-identical factor lists under
// the lanes kernel at several lane widths — including L=1 and group/tile
// sizes that leave the final lockstep batches ragged.
func TestLanesMatchesScalarFindings(t *testing.T) {
	c := corpus(t, 24, 96, 4, 51)
	moduli := c.Moduli()
	scalar, err := AllPairs(moduli, Config{Algorithm: gcd.Approximate, Early: true, GroupSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(scalar.Factors) == 0 {
		t.Fatal("corpus planted no factors")
	}
	for _, width := range []int{1, 4, 16, 64} {
		for _, early := range []bool{false, true} {
			t.Run(fmt.Sprintf("pairs/width=%d/early=%v", width, early), func(t *testing.T) {
				cfg := lanesCfg(width)
				cfg.Early = early
				cfg.Workers = 3
				cfg.GroupSize = 5
				res, err := AllPairs(moduli, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Pairs != scalar.Pairs {
					t.Fatalf("covered %d pairs, want %d", res.Pairs, scalar.Pairs)
				}
				sameFactors(t, res.Factors, scalar.Factors)
			})
		}
		t.Run(fmt.Sprintf("hybrid/width=%d", width), func(t *testing.T) {
			cfg := lanesCfg(width)
			cfg.Workers = 2
			cfg.TileSize = 7
			res, err := Hybrid(moduli, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Pairs != scalar.Pairs {
				t.Fatalf("covered %d pairs, want %d", res.Pairs, scalar.Pairs)
			}
			sameFactors(t, res.Factors, scalar.Factors)
		})
		t.Run(fmt.Sprintf("incremental/width=%d", width), func(t *testing.T) {
			cfg := lanesCfg(width)
			cfg.Workers = 2
			old, newer := moduli[:14], moduli[14:]
			want, err := Incremental(old, newer, Config{Algorithm: gcd.Approximate, Early: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Incremental(old, newer, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameFactors(t, res.Factors, want.Factors)
		})
	}
}

// TestLanesRequiresApproximate: the lanes kernel implements only the
// Approximate algorithm, and every engine front-end rejects the rest.
func TestLanesRequiresApproximate(t *testing.T) {
	c := corpus(t, 6, 64, 1, 52)
	moduli := c.Moduli()
	cfg := Config{Algorithm: gcd.Binary, Kernel: engine.KernelLanes}
	if _, err := AllPairs(moduli, cfg); err == nil {
		t.Error("AllPairs accepted lanes kernel with Binary algorithm")
	}
	if _, err := Hybrid(moduli, cfg); err == nil {
		t.Error("Hybrid accepted lanes kernel with Binary algorithm")
	}
	if _, err := Incremental(moduli[:3], moduli[3:], cfg); err == nil {
		t.Error("Incremental accepted lanes kernel with Binary algorithm")
	}
}

// TestLanesPanicQuarantine: a panic injected mid-batch — at the enqueue
// fault point of a targeted pair — quarantines exactly that pair while
// every other pair of the same lockstep batch still gets its exact
// verdict, so the findings match a clean run's.
func TestLanesPanicQuarantine(t *testing.T) {
	c := corpus(t, 16, 64, 2, 53)
	moduli := c.Moduli()
	clean, err := AllPairs(moduli, Config{Algorithm: gcd.Approximate, Early: true, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	planted := map[[2]int]bool{}
	for _, pp := range c.Planted {
		planted[[2]int{pp.I, pp.J}] = true
	}
	target := [2]int{-1, -1}
	for i := 0; i < 16 && target[0] < 0; i++ {
		for j := i + 1; j < 16; j++ {
			if !planted[[2]int{i, j}] {
				target = [2]int{i, j}
				break
			}
		}
	}
	plan := faultinject.NewPlan()
	plan.PanicAtIJ = &target
	cfg := lanesCfg(8)
	cfg.Workers = 3
	cfg.GroupSize = 4
	cfg.Fault = plan.Hook()
	res, err := AllPairs(moduli, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != clean.Pairs {
		t.Fatalf("computed %d pairs, want %d", res.Pairs, clean.Pairs)
	}
	if len(res.BadPairs) != 1 || res.BadPairs[0].I != target[0] || res.BadPairs[0].J != target[1] {
		t.Fatalf("BadPairs = %+v, want exactly the injected %v", res.BadPairs, target)
	}
	sameFactors(t, res.Factors, clean.Factors)

	// The ordinal variant must also be absorbed without crashing.
	for _, at := range []int64{0, 7, 33} {
		plan := faultinject.NewPlan()
		plan.PanicAtPair = at
		cfg := lanesCfg(4)
		cfg.Workers = 2
		cfg.GroupSize = 4
		cfg.Fault = plan.Hook()
		res, err := AllPairs(moduli, cfg)
		if err != nil {
			t.Fatalf("panic at ordinal %d: %v", at, err)
		}
		if res.Pairs != clean.Pairs || len(res.BadPairs) != 1 {
			t.Fatalf("panic at ordinal %d: pairs=%d bad=%+v", at, res.Pairs, res.BadPairs)
		}
	}
}

// TestLanesJournalResumeAcrossKernels: the kernel is deliberately not
// part of the journal fingerprint, so a run checkpointed under the
// scalar kernel resumes under the lanes kernel (and vice versa) with
// findings identical to an uninterrupted run.
func TestLanesJournalResumeAcrossKernels(t *testing.T) {
	c := corpus(t, 20, 64, 3, 54)
	moduli := c.Moduli()
	base := Config{Algorithm: gcd.Approximate, Early: true, GroupSize: 4}
	clean, err := AllPairs(moduli, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, firstLanes := range []bool{false, true} {
		path := filepath.Join(t.TempDir(), "run.jsonl")
		w, err := checkpoint.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		plan := faultinject.NewPlan()
		plan.CancelAtPair = 40
		plan.Cancel = cancel
		kcfg := base
		if firstLanes {
			kcfg.Kernel = engine.KernelLanes
			kcfg.LaneWidth = 4
		}
		kcfg.Workers = 3
		kcfg.Checkpoint = w
		kcfg.Fault = plan.Hook()
		res, err := AllPairsContext(ctx, moduli, kcfg)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if !res.Canceled {
			t.Fatal("run completed before the cancel fired")
		}

		st, err := checkpoint.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := checkpoint.OpenAppend(path)
		if err != nil {
			t.Fatal(err)
		}
		rcfg := base
		if !firstLanes { // resume under the other kernel
			rcfg.Kernel = engine.KernelLanes
			rcfg.LaneWidth = 16
		}
		rcfg.Resume = st
		rcfg.Checkpoint = w2
		resumed, err := AllPairs(moduli, rcfg)
		if err != nil {
			t.Fatalf("resume (firstLanes=%v): %v", firstLanes, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		if resumed.Canceled || resumed.Pairs != clean.Pairs {
			t.Fatalf("resumed: canceled=%v pairs=%d want %d", resumed.Canceled, resumed.Pairs, clean.Pairs)
		}
		if resumed.ResumedPairs != res.Pairs {
			t.Fatalf("replayed %d pairs, journal had %d", resumed.ResumedPairs, res.Pairs)
		}
		sameFactors(t, resumed.Factors, clean.Factors)
	}
}

// TestLanesMetrics: a lanes run populates the bulk_lanes_* instruments
// with self-consistent values; a scalar run leaves them untouched.
func TestLanesMetrics(t *testing.T) {
	c := corpus(t, 16, 64, 2, 55)
	moduli := c.Moduli()
	reg := obs.NewRegistry()
	cfg := lanesCfg(8)
	cfg.Workers = 2
	cfg.Metrics = reg
	res, err := AllPairs(moduli, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	retired := snap.Counters["bulk_lanes_retirements_total"]
	if retired != res.Pairs {
		t.Errorf("bulk_lanes_retirements_total = %d, want %d retired pairs", retired, res.Pairs)
	}
	if snap.Counters["bulk_lanes_batches_total"] <= 0 {
		t.Error("bulk_lanes_batches_total not populated")
	}
	if snap.Counters["bulk_lanes_supersteps_total"] <= 0 {
		t.Error("bulk_lanes_supersteps_total not populated")
	}
	if occ := snap.Gauges["bulk_lanes_occupancy"]; occ <= 0 || occ > 1 {
		t.Errorf("bulk_lanes_occupancy = %v, want in (0, 1]", occ)
	}

	scalarReg := obs.NewRegistry()
	if _, err := AllPairs(moduli, Config{
		Config:    engine.Config{Metrics: scalarReg},
		Algorithm: gcd.Approximate, Early: true,
	}); err != nil {
		t.Fatal(err)
	}
	if n := scalarReg.Snapshot().Counters["bulk_lanes_batches_total"]; n != 0 {
		t.Errorf("scalar run incremented bulk_lanes_batches_total to %d", n)
	}
}
