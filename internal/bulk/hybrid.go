package bulk

import (
	"context"
	"fmt"
	"time"

	"bulkgcd/internal/checkpoint"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/subprod"
)

// The hybrid engine sits between the paper's all-pairs computation and
// Bernstein's batch GCD: the corpus is cut into tiles of T moduli, and
// each cross-tile cell (A, B) is first interrogated with one subproduct
// GCD per row modulus,
//
//	g_i = gcd(n_i, Π(tile B) mod n_i)
//
// Any factor n_i shares with any n_j in tile B divides both n_i and
// Π(tile B), hence divides Π(tile B) mod n_i, hence divides g_i — so
// g_i = 1 proves n_i coprime to every modulus of tile B and the whole
// row of T pairs is skipped with one division and one GCD. Only rows
// with g_i > 1 descend to the exact per-pair runner, which is why the
// hybrid's findings are byte-identical to the all-pairs engine at every
// tile size: skipped pairs are proven coprime (the all-pairs engine
// would have reported nothing for them) and descended pairs run the
// identical kernel with the identical options. Diagonal cells (A, A)
// always descend — Π(tile A) ≡ 0 mod n_i makes the filter vacuous
// there.
//
// Tile subproducts are built once and cached under Config.SubprodBudget
// (LRU); the work unit for scheduling, checkpointing and cancellation is
// one cell, so every journaled cell is final and an interrupted run
// resumes exactly like the all-pairs engine.

// hybridCell is one tile-pair work unit, A <= B (tile indices).
type hybridCell struct {
	A, B int
}

// hybridPlan is the validated shape of a hybrid run.
type hybridPlan struct {
	active  []int
	maxBits int
	bad     []Quarantined
	tile    int          // tile width T
	cells   []hybridCell // deterministic row-major order
	total   int64        // covered pairs: len(active)*(len(active)-1)/2
	header  checkpoint.Header
}

// tileSpan returns the active-index range [lo, hi) of tile t.
func (p *hybridPlan) tileSpan(t int) (lo, hi int) {
	lo = t * p.tile
	hi = lo + p.tile
	if hi > len(p.active) {
		hi = len(p.active)
	}
	return lo, hi
}

func (p *hybridPlan) tiles() int {
	return (len(p.active) + p.tile - 1) / p.tile
}

func planHybrid(moduli []*mpnat.Nat, cfg Config) (*hybridPlan, error) {
	if err := validateKernel(cfg); err != nil {
		return nil, err
	}
	active, maxBits, bad, err := validateSet("", 0, moduli, cfg.Quarantine)
	if err != nil {
		return nil, err
	}
	if len(active) < 2 {
		return nil, fmt.Errorf("bulk: need at least 2 usable moduli, got %d", len(active))
	}
	t := cfg.TileSize
	if t <= 0 {
		t = 64
	}
	if t > len(active) {
		t = len(active)
	}
	p := &hybridPlan{active: active, maxBits: maxBits, bad: bad, tile: t}
	nt := p.tiles()
	for a := 0; a < nt; a++ {
		for b := a; b < nt; b++ {
			p.cells = append(p.cells, hybridCell{A: a, B: b})
		}
	}
	m := int64(len(active))
	p.total = m * (m - 1) / 2
	p.header = checkpoint.Header{
		V:           checkpoint.Version,
		Engine:      "hybrid",
		Fingerprint: fingerprint("hybrid", cfg, t, moduli),
		Units:       len(p.cells),
		TotalPairs:  p.total,
	}
	return p, nil
}

// HybridJournalHeader returns the checkpoint header a Hybrid run over
// these inputs writes (the hybrid counterpart of JournalHeader).
func HybridJournalHeader(moduli []*mpnat.Nat, cfg Config) (checkpoint.Header, error) {
	plan, err := planHybrid(moduli, cfg)
	if err != nil {
		return checkpoint.Header{}, err
	}
	return plan.header, nil
}

// filterHit runs the subproduct filter for one row modulus: true means
// the row must descend to per-pair GCDs, false proves the whole row
// coprime. A panic inside the filter conservatively descends (the
// per-pair runner then computes — and quarantines — the truth pairwise).
func (p *pairRunner) filterHit(n, prod *mpnat.Nat, hm *hybridMetrics) (hit bool) {
	defer func() {
		if r := recover(); r != nil {
			hit = true
			p.scratch = gcd.NewScratch(p.maxBits)
			p.cfg.Trace.Event("bad_filter", "err", fmt.Sprint(r))
		}
	}()
	start := time.Now()
	defer func() { hm.observeFilter(time.Since(start)) }()
	r := new(mpnat.Nat).Mod(prod, n)
	if r.IsZero() {
		return true // n divides the subproduct: duplicate or fully shared
	}
	r.RshiftStrip(r) // n is odd, so stripping 2s from r preserves the gcd
	if r.IsOne() {
		return false
	}
	// Full GCD, never early-terminated: a false "coprime" here would
	// silently drop a finding, so the filter takes no shortcuts.
	g, _ := p.scratch.Compute(p.cfg.Algorithm, n, r, gcd.Options{})
	return g == nil || !g.IsOne()
}

// runCell computes one cell into blk: diagonal cells run their
// triangular half pairwise, cross cells filter each row against the
// column tile's subproduct and descend only on hits. Descended pairs go
// through the kernel dispatch, so under the lanes kernel a cell's hit
// rows accumulate into one lockstep batch drained before the cell is
// sealed for journaling.
func (p *pairRunner) runCell(plan *hybridPlan, c hybridCell, cache *subprod.Cache, hm *hybridMetrics, blk *blockOut) {
	aLo, aHi := plan.tileSpan(c.A)
	if c.A == c.B {
		for k := aLo; k < aHi; k++ {
			for u := k + 1; u < aHi; u++ {
				p.pair(plan.active[k], plan.active[u], blk)
			}
		}
		p.flush(blk)
		return
	}
	bLo, bHi := plan.tileSpan(c.B)
	prod := cache.Get(c.B, func() *mpnat.Nat {
		ms := make([]*mpnat.Nat, 0, bHi-bLo)
		for u := bLo; u < bHi; u++ {
			ms = append(ms, p.moduli[plan.active[u]])
		}
		return subprod.ProductNat(ms)
	})
	for k := aLo; k < aHi; k++ {
		i := plan.active[k]
		if p.filterHit(p.moduli[i], prod, hm) {
			hm.observeRow(true, int64(bHi-bLo))
			for u := bLo; u < bHi; u++ {
				p.pair(i, plan.active[u], blk)
			}
		} else {
			hm.observeRow(false, int64(bHi-bLo))
			blk.pairs += int64(bHi - bLo) // proven coprime, accounted as done
		}
	}
	p.flush(blk)
}

// Hybrid runs the tiled product-filter engine; see HybridContext.
func Hybrid(moduli []*mpnat.Nat, cfg Config) (*Result, error) {
	return HybridContext(context.Background(), moduli, cfg)
}

// HybridContext computes the same Result as AllPairsContext — identical
// Factors, BadPairs, Quarantined and pair totals — using the tiled
// subproduct filter to avoid the vast majority of per-pair GCDs on
// sparse corpora. Result.Stats covers only the descended per-pair GCDs
// (filter divisions and GCDs are reported through the bulk_hybrid_*
// metrics instead). Cancellation, checkpointing and resume follow the
// all-pairs contract with one cell as the work unit.
func HybridContext(ctx context.Context, moduli []*mpnat.Nat, cfg Config) (*Result, error) {
	plan, err := planHybrid(moduli, cfg)
	if err != nil {
		return nil, err
	}
	resumedFactors, resumedBad, resumedPairs, resumed, err := prepareJournal(plan.header, &cfg)
	if err != nil {
		return nil, err
	}

	workers := cfg.EffectiveWorkers()

	metrics := newRunMetrics(cfg.Metrics, cfg.Algorithm)
	hm := newHybridMetrics(cfg.Metrics)
	metrics.begin(workers, len(plan.bad), resumedPairs)
	for _, q := range plan.bad {
		cfg.Trace.Event("quarantine", "index", q.Index, "reason", q.Reason)
	}
	runSpan := cfg.Trace.StartSpan("run",
		"engine", "hybrid", "algorithm", cfg.Algorithm.String(), "early", cfg.Early,
		"moduli", len(moduli), "workers", workers, "tile", plan.tile,
		"cells", len(plan.cells), "total_pairs", plan.total)

	// The tile-subproduct cache is probed from every worker's hot filter
	// loop, so it is sharded to roughly one lock per worker.
	cache := subprod.NewCacheShards(cfg.SubprodBudget, workers)

	start := time.Now()
	up := &unitPool{
		cfg: &cfg, moduli: moduli, maxBits: plan.maxBits, metrics: metrics,
		runSpan: runSpan, spanName: "cell", spanKey: "cell",
		spanAttrs: func(i int) []any { return []any{"a", plan.cells[i].A, "b", plan.cells[i].B} },
		resumed:   resumed, total: plan.total, resumed0: resumedPairs,
		run: func(pr *pairRunner, i int, blk *blockOut) {
			pr.runCell(plan, plan.cells[i], cache, hm, blk)
		},
		observeUnit: hm.observeCell,
	}
	outs, _, err := up.execute(ctx, len(plan.cells), workers)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Elapsed:      time.Since(start),
		Workers:      workers,
		Canceled:     ctx.Err() != nil,
		ResumedPairs: resumedPairs,
		Quarantined:  plan.bad,
		Pairs:        resumedPairs,
		Total:        plan.total,
		Factors:      resumedFactors,
		BadPairs:     resumedBad,
	}
	var busy time.Duration
	for i := range outs {
		res.Pairs += outs[i].pairs
		res.Stats.Add(&outs[i].stats)
		res.Factors = append(res.Factors, outs[i].factors...)
		res.BadPairs = append(res.BadPairs, outs[i].bad...)
		busy += outs[i].busy
	}
	sortFactors(res.Factors)
	sortBadPairs(res.BadPairs)
	metrics.finish(res, busy)
	hm.finish(cache.Stats())
	runSpan.End("pairs", res.Pairs, "factors", len(res.Factors),
		"bad_pairs", len(res.BadPairs), "canceled", res.Canceled)
	if !res.Canceled && res.Pairs != plan.total {
		return nil, fmt.Errorf("bulk: internal error: covered %d pairs, want %d", res.Pairs, plan.total)
	}
	return res, nil
}
