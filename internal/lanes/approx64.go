package lanes

import "math/bits"

// This file holds the d = 64 quotient approximation and the two serialized
// per-lane paths of the kernel: the exact 64-bit tail (approx Case 1) and
// the rare beta > 0 update. The approximation mirrors Section III's
// approx(X, Y) decision tree with the limb size doubled: alpha * D^beta is
// a lower bound on X div Y built from the top one or two 64-bit limbs, so
// each case below carries the same "alpha*D^beta*Y <= X" bound as its
// d = 32 counterpart in internal/gcd.

// approx64 computes (alpha, beta) for a lane with lx >= 2 and X >= Y,
// from lengths and the top two limbs of each operand alone — the head
// registers the kernel carries across iterations, so the steady-state
// approximation makes no operand-matrix access at all. D = 2^64, beta
// counts 64-bit limbs, alpha >= 1, and alpha * D^beta * Y <= X.
func approx64(lx32, ly32 int32, x1, x2, y1, y2 uint64) (alpha uint64, beta int) {
	lx, ly := int(lx32), int(ly32)
	switch {
	case ly == 1:
		if x1 >= y1 {
			// Case 2-A analog: alpha = x1 div y1.
			return x1 / y1, lx - 1
		}
		// Case 2-B analog: two top limbs of X over y1; x1 < y1 is the
		// bits.Div64 precondition.
		q, _ := bits.Div64(x1, x2, y1)
		return q, lx - 2
	case lx > ly:
		if x1 > y1 {
			// Case 4-A analog: x1 > y1 implies y1 < 2^64-1, so y1+1
			// cannot overflow, and alpha = x1 div (y1+1) >= 1.
			return x1 / (y1 + 1), lx - ly
		}
		// Case 4-B analog. y1+1 overflows only when y1 is all ones, and
		// dividing x1:x2 by D = 2^64 is just taking the top limb.
		if y1 == ^uint64(0) {
			return x1, lx - ly - 1
		}
		q, _ := bits.Div64(x1, x2, y1+1) // x1 <= y1 < y1+1: precondition holds
		return q, lx - ly - 1
	default:
		// Case 4-C analog, sharpened: with equal lengths the d = 32 code
		// falls back to alpha = 1, but at d = 64 the top two limbs give a
		// 128-bit approximation alpha = x128 div (y128+1) that tracks the
		// true quotient. Small quotients dominate (the Gauss-Kuzmin law
		// puts ~76% of them below 4), so alpha in {1, 2, 3} is resolved
		// with shift-and-subtract tests and only the tail pays for the
		// 40-90 cycle hardware divide.
		if x1 < y1 || (x1 == y1 && x2 <= y2) {
			return 1, 0 // x128 <= y128: X - Y still holds (X >= Y)
		}
		d0, c := bits.Add64(y2, 1, 0)
		d1 := y1 + c // y1 >= 1 keeps the quotient < 2^64
		if d1>>63 != 0 {
			return 1, 0 // 2*(y128+1) exceeds 2^128 > x128
		}
		t1, t0 := d1<<1|d0>>63, d0<<1 // 2*(y128+1)
		_, br := bits.Sub64(x2, t0, 0)
		_, br = bits.Sub64(x1, t1, br)
		if br != 0 {
			return 1, 0 // x128 < 2*(y128+1)
		}
		s0, cc := bits.Add64(t0, d0, 0) // 3*(y128+1), with 128-bit overflow in ov
		s1, ov := bits.Add64(t1, d1, cc)
		if ov == 0 {
			_, br = bits.Sub64(x2, s0, 0)
			_, br = bits.Sub64(x1, s1, br)
		}
		if ov != 0 || br != 0 {
			return 2, 0 // x128 < 3*(y128+1); the odd adjustment makes this 1, like the scalar kernel
		}
		if d1>>62 == 0 {
			q1, q0 := d1<<2|d0>>62, d0<<2 // 4*(y128+1)
			_, br = bits.Sub64(x2, q0, 0)
			_, br = bits.Sub64(x1, q1, br)
			if br == 0 {
				return div128(x1, x2, d1, d0), 0 // alpha >= 4: exact divide
			}
		}
		return 3, 0
	}
}

// div128 returns floor((u1:u0) / (d1:d0)) for d1 >= 1 and u128 < d128*2^64
// (always true when d1 >= 1). This is the textbook 3-by-2 division: both
// operands are normalized so the divisor's top bit is set, bits.Div64
// produces a candidate quotient from the top limbs, and at most a few
// corrections against the low divisor limb make it exact.
func div128(u1, u0, d1, d0 uint64) uint64 {
	s := uint(bits.LeadingZeros64(d1))
	dh := d1<<s | cshift(d0, s)
	dl := d0 << s
	// The numerator shifted by s spans three limbs; nh < 2^s <= dh keeps
	// the bits.Div64 precondition.
	nh := cshift(u1, s)
	nm := u1<<s | cshift(u0, s)
	nl := u0 << s
	q, r := bits.Div64(nh, nm, dh)
	for {
		th, tl := bits.Mul64(q, dl)
		if th < r || (th == r && tl <= nl) {
			return q
		}
		q--
		var c uint64
		r, c = bits.Add64(r, dh, 0)
		if c != 0 {
			return q // remainder grew past 64 bits: q*dl can no longer exceed it
		}
	}
}

// cshift returns v >> (64-s), with the s == 0 case yielding 0 (a plain Go
// shift by 64 would not).
func cshift(v uint64, s uint) uint64 {
	if s == 0 {
		return 0
	}
	return v >> (64 - s)
}

// tail128 finishes lane j once X fits two limbs: both operands then live
// entirely in the head registers, so the whole endgame runs as an exact
// 128-bit Euclid remainder loop with no operand-matrix traffic — the
// register analog of the scalar kernel's Case 1 tail, two limbs earlier.
//
// The remainder update X <- X mod Y preserves gcd(X, Y) exactly, the
// loop can only reach Y == 0 from a state whose Y is the (odd) gcd
// itself, and the Y bit-length check runs after every update, so the
// early/exact verdict and the exact gcd are byte-identical to the scalar
// kernel by the DESIGN.md section 5e argument: the verdict is a function
// of the gcd's size alone, not of the reduction path.
func (k *Kernel) tail128(j int) {
	var xh, xl, yh, yl uint64
	switch k.lx[j] {
	case 2:
		xh, xl = k.hx1[j], k.hx2[j]
	case 1:
		xl = k.hx1[j]
	}
	switch k.ly[j] {
	case 2:
		yh, yl = k.hy1[j], k.hy2[j]
	case 1:
		yl = k.hy1[j]
	}
	early := int(k.early[j])
	for {
		// One read of each operand and one write of X per step, in the
		// paper's 32-bit-word units, mirroring the sweep accounting.
		k.iters[j]++
		k.tailIters[j]++
		k.memops[j] += int64(2*words128(xh, xl) + words128(yh, yl))
		// X <- X mod Y; Y is non-zero here (checked below after every
		// update, and on entry by the retirement in exchangeAndRetire).
		switch {
		case yh != 0:
			xh, xl = mod128(xh, xl, yh, yl)
		case xh != 0:
			if xh >= yl {
				xh %= yl // fold the top limb so Div64's precondition holds
			}
			_, xl = bits.Div64(xh, xl, yl)
			xh = 0
		default:
			xl %= yl
		}
		// The remainder is below Y, so (Y, r) is already ordered X >= Y.
		xh, xl, yh, yl = yh, yl, xh, xl
		if yh|yl == 0 {
			// Exact: the last non-zero remainder is the odd gcd. Write it
			// back to the column (zero-padding above is intact — values
			// only shrank) so retirement converts it as usual.
			xm, _ := k.lanePlanes(j)
			xm[j] = xl
			xm[k.l+j] = xh
			k.lx[j] = 1
			if xh != 0 {
				k.lx[j] = 2
			}
			k.ly[j] = 0
			k.retire(j, false)
			return
		}
		if early > 0 && bitlen128(yh, yl) < early {
			k.retire(j, true)
			return
		}
	}
}

// mod128 returns (xh:xl) mod (yh:yl) for yh >= 1 and x >= y. Small
// quotients dominate (Gauss-Kuzmin), so q in {1, 2, 3} is peeled with
// double-word subtractions; q >= 4 pays for the 3-by-2 divide plus a
// multiply-back (q*y <= x < 2^128, so the low 128 bits are exact).
func mod128(xh, xl, yh, yl uint64) (uint64, uint64) {
	dl, br := bits.Sub64(xl, yl, 0)
	dh, _ := bits.Sub64(xh, yh, br)
	if lt128(dh, dl, yh, yl) {
		return dh, dl
	}
	dl, br = bits.Sub64(dl, yl, 0)
	dh, _ = bits.Sub64(dh, yh, br)
	if lt128(dh, dl, yh, yl) {
		return dh, dl
	}
	dl, br = bits.Sub64(dl, yl, 0)
	dh, _ = bits.Sub64(dh, yh, br)
	if lt128(dh, dl, yh, yl) {
		return dh, dl
	}
	q := div128(xh, xl, yh, yl)
	hi, lo := bits.Mul64(yl, q)
	hi += yh * q
	rl, br2 := bits.Sub64(xl, lo, 0)
	rh, _ := bits.Sub64(xh, hi, br2)
	return rh, rl
}

// bitlen128 is the bit length of (h:l).
func bitlen128(h, l uint64) int {
	if h != 0 {
		return 64 + bits.Len64(h)
	}
	return bits.Len64(l)
}

// words128 is the 32-bit word length of (h:l), for memory-op accounting
// in the paper's units.
func words128(h, l uint64) int {
	if h != 0 {
		return 2 + wordsOf64(h)
	}
	return wordsOf64(l)
}

// wordsOf64 is the 32-bit word length of v, for memory-op accounting in
// the paper's units.
func wordsOf64(v uint64) int {
	switch {
	case v == 0:
		return 0
	case v>>32 == 0:
		return 1
	default:
		return 2
	}
}

// betaUpdate applies the beta > 0 update to lane j:
//
//	X <- X + Y - Y*alpha*D^beta, then strip trailing zeros,
//
// the multiplier alpha*D^beta - 1 made odd exactly as the scalar
// SubMulShiftAddRshift. The addition runs first so the intermediate never
// underflows. This path is rare (Section V bounds it below 1e-8 per
// iteration at d = 32, and doubling d only shrinks it), so it runs
// serialized per lane over the extracted column.
func (k *Kernel) betaUpdate(j int, alpha uint64, beta int) {
	xm, ym := k.lanePlanes(j)
	l := k.l
	lx, ly := int(k.lx[j]), int(k.ly[j])
	u := k.utmp[:lx+1]

	// u = X + Y. Y's column is zero-padded, so the loop reads it flat.
	var carry uint64
	for i := 0; i < lx; i++ {
		u[i], carry = bits.Add64(xm[i*l+j], ym[i*l+j], carry)
	}
	u[lx] = carry

	// u -= Y*alpha << (64*beta).
	var mulCarry, borrow uint64
	for i := 0; i < ly; i++ {
		hi, lo := bits.Mul64(ym[i*l+j], alpha)
		lo, c := bits.Add64(lo, mulCarry, 0)
		mulCarry = hi + c
		u[beta+i], borrow = bits.Sub64(u[beta+i], lo, borrow)
	}
	for i := beta + ly; i <= lx; i++ {
		u[i], borrow = bits.Sub64(u[i], mulCarry, borrow)
		mulCarry = 0
	}
	if borrow != 0 || mulCarry != 0 {
		panic("lanes: beta update underflow")
	}

	// Strip trailing zeros and write the column back. The result is
	// X - (alpha*D^beta - 1)*Y < X, so it fits lx limbs and u[lx] == 0.
	t0 := 0
	for t0 <= lx && u[t0] == 0 {
		t0++
	}
	newLen := 0
	if t0 <= lx {
		sh := uint(bits.TrailingZeros64(u[t0]))
		n := lx + 1 - t0
		for i := 0; i < n; i++ {
			var hi uint64
			if t0+i+1 <= lx {
				hi = u[t0+i+1]
			}
			// hi<<(64-sh) is 0 in Go when sh == 0, which is exactly right.
			xm[i*l+j] = u[t0+i]>>sh | hi<<(64-sh)
		}
		newLen = n
		for newLen > 0 && xm[(newLen-1)*l+j] == 0 {
			newLen--
		}
	}
	for i := newLen; i < lx; i++ {
		xm[i*l+j] = 0
	}
	k.lx[j] = int32(newLen)
	k.betaCnt[j]++
}
