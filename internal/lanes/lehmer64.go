package lanes

import "math/bits"

// This file holds the head-batched quotient composition: the lane analog
// of Lehmer's trick, fitted to the Approximate-Euclidean update. When a
// lane's operands have equal limb length, several quotient steps are
// simulated on the 64-bit normalized heads the kernel already carries in
// registers, composed into a 2x2 unimodular matrix, and applied to the
// operand columns in one dual-output fused sweep. One column pass then
// pays for ~10 quotient steps instead of one, which is what lifts the
// lane kernel past the scalar kernel: the per-step serial borrow/multiply
// chain over the column was the dominant cost, and iteration counts of
// the d = 64 and d = 32 kernels are otherwise identical (the average
// quotient is small, so packing two words per limb does not shrink the
// step count — see DESIGN.md section 5e).
//
// Correctness does not depend on the simulated quotients agreeing with
// full-precision Euclid. The composed matrix M has det +-1 by
// construction, so gcd(M * (X, Y)) = gcd(X, Y) for ANY quotient
// sequence; the only obligations are that both outputs stay nonnegative
// and strictly smaller, which the acceptance condition below guarantees
// from the head error bound alone. The trailing-zero strips fused into
// the apply preserve the odd gcd exactly like the scalar kernel's
// rshift. Findings therefore stay byte-identical to the scalar kernel
// by the same invariance argument as the per-step path.

// maxBatchQ caps a simulated quotient: a step with q at or above 2^31
// ends the batch and lets the full-precision path take it (such a step
// removes 31+ bits on its own, so nothing is lost).
const maxBatchQ = 1 << 31

// headBatch tries to advance lane j by a batch of quotient steps
// simulated on the normalized 64-bit heads. It requires lx == ly (the
// caller checks) and returns false — lane untouched — when the heads
// cannot certify even one step; the caller then falls back to the
// single-step path, which guarantees outer progress.
//
// Head error bound: with W = 2^(p-64) for p = bitlen(X), X = (xh+ex)*W
// and Y = (yh+ey)*W with ex, ey in [0,1). A composed row with
// magnitudes (a, b) evaluates to (a*sim_x - b*sim_y + a*ex - b*ey)*W,
// i.e. sim*W with an additive error strictly inside (-b, a) head units.
// Requiring sim_x >= u0+u1 and sim_y >= v0+v1 after every accepted step
// therefore keeps both true outputs strictly positive at apply time.
func (k *Kernel) headBatch(j int) bool {
	// Normalize both heads to X's top bit: xh gets its MSB set, yh is
	// Y's bits in the same window (yh < 2^64 because Y <= X).
	s := uint(bits.LeadingZeros64(k.hx1[j]))
	xh := k.hx1[j]<<s | cshift(k.hx2[j], s)
	yh := k.hy1[j]<<s | cshift(k.hy2[j], s)
	if yh == 0 {
		return false // Y more than 64 bits below X: one 4-C step strips plenty
	}
	u0, u1 := uint64(1), uint64(0) // row of X: +u0*X - u1*Y (parity even)
	v0, v1 := uint64(0), uint64(1) // row of Y: -v0*X + v1*Y
	sx, sy := xh, yh
	t := 0
	for {
		// Quotient of the simulated remainders. Small quotients dominate
		// (Gauss-Kuzmin), so peel q in {1, 2, 3} with subtractions before
		// paying for a hardware divide.
		var q, r uint64
		switch d := sx - sy; {
		case d < sy:
			q, r = 1, d
		case d-sy < sy:
			q, r = 2, d-sy
		case d-2*sy < sy:
			q, r = 3, d-2*sy
		default:
			q = sx / sy
			r = sx - q*sy
			if q >= maxBatchQ {
				break // huge step: let full precision take it
			}
		}
		// Candidate coefficient row, with overflow guards.
		h0, m0 := bits.Mul64(q, v0)
		h1, m1 := bits.Mul64(q, v1)
		nv0, c0 := bits.Add64(m0, u0, 0)
		nv1, c1 := bits.Add64(m1, u1, 0)
		if h0|c0|h1|c1 != 0 {
			break
		}
		// Acceptance: the post-step invariant sim >= sum of its row's
		// coefficients, for both rows, keeps the eventual apply
		// nonnegative. sy >= v0+v1 holds inductively for the new X row;
		// the new Y row needs r >= nv0+nv1.
		sum, cs := bits.Add64(nv0, nv1, 0)
		if cs != 0 || r < sum {
			break
		}
		u0, u1, v0, v1 = v0, v1, nv0, nv1
		sx, sy = sy, r
		t++
	}
	if t == 0 {
		return false
	}
	// Apply the composed matrix. Signs alternate with step parity: after
	// an even number of steps the X row is (+u0, -u1) and the Y row
	// (-v0, +v1); odd parity flips both. Renaming the planes folds the
	// parity away: newX = a*P - b*Q and newY = d*Q - c*P.
	xm, ym := k.lanePlanes(j)
	var a, b, c, d uint64
	var pm, qm []uint64
	if t&1 == 0 {
		a, b, c, d = u0, u1, v0, v1
		pm, qm = xm, ym
	} else {
		a, b, c, d = u1, u0, v1, v0
		pm, qm = ym, xm
	}
	// Account the batch before the apply shrinks the lengths: t quotient
	// steps, one read and one write of each column, in the paper's
	// 32-bit-word units.
	k.memops[j] += 8 * int64(k.lx[j])
	k.applyLane(j, a, b, c, d, pm, qm, xm, ym)
	k.iters[j] += int32(t)
	return true
}

// applyLane streams newX = a*P - b*Q into the X plane and
// newY = d*Q - c*P into the Y plane in one fused column pass, with the
// same trailing-zero strip, head capture and zero-padding as sweepLane.
// P and Q are the X/Y planes in parity order; both write cursors trail
// the shared read cursor, so the update is in place.
func (k *Kernel) applyLane(j int, a, b, c, d uint64, pm, qm, xm, ym []uint64) {
	l := k.l
	lx := int(k.lx[j])
	var carA, carB, carC, carD uint64 // multiply carries of a*P, b*Q, c*P, d*Q
	var borX, borY uint64             // borrows of the two subtractions
	var pendX, pendY, shX, shY, lastX, lastY uint64
	startedX, startedY := false, false
	idx := j
	outX, outY := j, j
	outLenX, outLenY := 0, 0
	for i := 0; i < lx; i++ {
		pv, qv := pm[idx], qm[idx]
		idx += l

		hiA, loA := bits.Mul64(pv, a)
		loA, cc := bits.Add64(loA, carA, 0)
		carA = hiA + cc
		hiB, loB := bits.Mul64(qv, b)
		loB, cc = bits.Add64(loB, carB, 0)
		carB = hiB + cc
		dx, br := bits.Sub64(loA, loB, borX)
		borX = br

		hiD, loD := bits.Mul64(qv, d)
		loD, cc = bits.Add64(loD, carD, 0)
		carD = hiD + cc
		hiC, loC := bits.Mul64(pv, c)
		loC, cc = bits.Add64(loC, carC, 0)
		carC = hiC + cc
		dy, br2 := bits.Sub64(loD, loC, borY)
		borY = br2

		if startedX {
			w := pendX | dx<<(64-shX)
			xm[outX] = w
			lastX = w
			outX += l
			outLenX++
			pendX = dx >> shX
		} else if dx != 0 {
			startedX = true
			shX = uint64(bits.TrailingZeros64(dx))
			pendX = dx >> shX
		}
		if startedY {
			w := pendY | dy<<(64-shY)
			ym[outY] = w
			lastY = w
			outY += l
			outLenY++
			pendY = dy >> shY
		} else if dy != 0 {
			startedY = true
			shY = uint64(bits.TrailingZeros64(dy))
			pendY = dy >> shY
		}
	}
	// Both combinations are nonnegative and below 2^(64*lx): the
	// leftover multiply carries must cancel against the borrows.
	if carA != carB+borX || carD != carC+borY {
		panic("lanes: batch apply underflow")
	}
	newLenX := 0
	if startedX {
		xm[outX] = pendX
		newLenX = outLenX + 1
		k.hx1[j] = pendX
		k.hx2[j] = 0
		if outLenX > 0 {
			k.hx2[j] = lastX
		}
		if pendX == 0 {
			for newLenX > 0 && xm[(newLenX-1)*l+j] == 0 {
				newLenX--
			}
		}
	} else {
		k.hx1[j], k.hx2[j] = 0, 0
	}
	newLenY := 0
	if startedY {
		ym[outY] = pendY
		newLenY = outLenY + 1
		k.hy1[j] = pendY
		k.hy2[j] = 0
		if outLenY > 0 {
			k.hy2[j] = lastY
		}
		if pendY == 0 {
			for newLenY > 0 && ym[(newLenY-1)*l+j] == 0 {
				newLenY--
			}
		}
	} else {
		k.hy1[j], k.hy2[j] = 0, 0
	}
	for i := newLenX; i < lx; i++ {
		xm[i*l+j] = 0
	}
	for i := newLenY; i < lx; i++ {
		ym[i*l+j] = 0
	}
	k.lx[j] = int32(newLenX)
	k.ly[j] = int32(newLenY)
	if startedX && pendX == 0 {
		k.reloadXHead(j)
	}
	if startedY && pendY == 0 {
		k.reloadYHead(j)
	}
}
