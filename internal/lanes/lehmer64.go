package lanes

import (
	"math"
	"math/bits"
)

// This file holds the head-batched quotient composition: the lane analog
// of Lehmer's trick, fitted to the Approximate-Euclidean update. When a
// lane's operands have equal limb length, several quotient steps are
// simulated on the double-word (128-bit) heads the kernel already carries
// in registers, composed into a 2x2 unimodular matrix, and applied to the
// operand columns in one dual-output fused sweep. One column pass then
// pays for ~25 quotient steps instead of one, which is what lifts the
// lane kernel past the scalar kernel: the per-step serial borrow/multiply
// chain over the column was the dominant cost, and iteration counts of
// the d = 64 and d = 32 kernels are otherwise identical (the average
// quotient is small, so packing two words per limb does not shrink the
// step count — see DESIGN.md section 5e).
//
// The simulation runs on the unnormalized top-two-limb windows
// (hx1:hx2) and (hy1:hy2). With lx == ly >= 3 both top limbs are
// non-zero, so both simulated values carry at least 65 significant bits —
// at worst one more than the previous single-word normalized heads, on
// average two words' worth — which roughly doubles the certified batch
// depth before the acceptance bound trips (Lehmer's classic precision
// argument: k head bits certify ~k/2 quotient steps' coefficient
// growth). The depth cap adapts at run time: it grows while most batches
// still end cap-bound (the acceptance test would have admitted more
// steps) and freezes once the natural acceptance-rejection rate
// dominates, so corpora with small quotients get deep batches and
// adversarial ones settle shallow without re-tuning.
//
// Correctness does not depend on the simulated quotients agreeing with
// full-precision Euclid. The composed matrix M has det +-1 by
// construction, so gcd(M * (X, Y)) = gcd(X, Y) for ANY quotient
// sequence; the only obligations are that both outputs stay nonnegative
// and strictly smaller, which the acceptance condition below guarantees
// from the head error bound alone. The trailing-zero strips fused into
// the apply preserve the odd gcd exactly like the scalar kernel's
// rshift. Findings therefore stay byte-identical to the scalar kernel
// by the same invariance argument as the per-step path.

const (
	// initialBatchDepth seeds the adaptive depth cap. Random 512-bit
	// corpora settle around 25-40 accepted steps per batch, so the cap
	// doubles a few times early in a run and then stops moving.
	initialBatchDepth = 16
	// maxBatchDepth bounds the adaptive growth. The 64-bit coefficient
	// rows overflow after ~90 steps even for an all-ones quotient
	// sequence (Fibonacci growth), so depth beyond this is unreachable.
	maxBatchDepth = 256
	// adaptWindow is the number of head batches between adaptation
	// decisions; capGrowNum/capGrowDen is the cap-bound fraction above
	// which the cap doubles (the acceptance-rejection rate threshold).
	adaptWindow = 32
	capGrowNum  = 1
	capGrowDen  = 2
)

// lt128 reports (ah:al) < (bh:bl).
func lt128(ah, al, bh, bl uint64) bool {
	_, br := bits.Sub64(al, bl, 0)
	_, br = bits.Sub64(ah, bh, br)
	return br != 0
}

// fhead builds an IEEE double from the top 53 bits of the 128-bit value
// (h:l), h != 0, by assembling the exponent and truncated mantissa
// directly — about seven branch-free integer ops, an order of magnitude
// cheaper than going through the compiler's uint64-to-float conversions
// twice. Truncation makes the result a one-ulp underestimate of the
// exact value, which the quotient correction below accounts for.
func fhead(h, l uint64) float64 {
	n := uint(bits.LeadingZeros64(h))
	m := h<<n | l>>(64-n) // top 64 bits, MSB at bit 63 (n == 0: l>>64 is 0 in Go)
	e := uint64(127) - uint64(n) + 1023
	return math.Float64frombits(e<<52 | (m>>11)&(1<<52-1))
}

// headBatch tries to advance lane j by a batch of quotient steps
// simulated on the double-word heads. It requires lx == ly >= 3 (the
// caller checks) and returns false — lane untouched — when the heads
// cannot certify even one step; the caller then falls back to the
// single-step path, which guarantees outer progress.
//
// Head error bound: with W = 2^(64*(lx-2)), X = (xh+ex)*W and
// Y = (yh+ey)*W for the exact 128-bit windows xh, yh and ex, ey in
// [0,1). A composed row with magnitudes (a, b) evaluates to
// (a*sim_x - b*sim_y + a*ex - b*ey)*W, i.e. sim*W with an additive error
// strictly inside (-b, a) head units. Requiring sim_x >= u0+u1 and
// sim_y >= v0+v1 after every accepted step therefore keeps both true
// outputs strictly positive at apply time, and the continuant identity
// coeff*sim <= xh < 2^128 keeps both below 2^(64*lx).
func (k *Kernel) headBatch(j int) bool {
	// The sims are the exact Euclid remainder sequence of the 128-bit
	// windows; X >= Y at equal lengths implies (sxh:sxl) >= (syh:syl).
	return k.headBatchFrom(j,
		k.hx1[j], k.hx2[j], k.hy1[j], k.hy2[j],
		1, 0, 0, 1, 0)
}

// runFusedQueue streams head-batch-eligible lanes through a two-slot
// interleaved simulation. The per-step serial chain — quotient feeding
// the remainder feeding the next step's operands — is ~25 cycles of
// pure latency per lane, far above its retirement cost; keeping two
// independent lanes' chains in flight lets the out-of-order core fill
// one chain's stalls with the other's work. When a slot's batch ends,
// the lane is finished and applied on the spot and the slot reloads
// from the queue, so the second chain stays hot across batch
// boundaries instead of draining at every pairwise exit.
//
// The fused loop carries no per-step guards: it only commits steps
// whose remainder keeps sy >= 2^66 (syh >= 4). Under that rule every
// continuant coefficient stays below 2^62 — from X0 = v1*X_t + u1*Y_t
// and Y0 = v0*X_t + u0*Y_t with nonnegative continuant entries and
// X_t, Y_t >= 2^66, X0, Y0 < 2^128 — so the in-loop row updates cannot
// overflow single words, and both sims exceed any row sum (< 2^63) at
// handoff, which is exactly the acceptance invariant the guarded path
// maintains. Each lane then finishes through the single-lane path from
// its current state: the one step the fused loop declined to commit is
// recomputed there under the full per-step guards, so semantics are
// exactly len(elig) independent headBatch calls in queue order.
func (k *Kernel) runFusedQueue(elig []int32) {
	depth := int(k.depthCap)
	next := 2
	ja, jb := int(elig[0]), int(elig[1])
	axh, axl := k.hx1[ja], k.hx2[ja]
	ayh, ayl := k.hy1[ja], k.hy2[ja]
	fax, fay := fhead(axh, axl), fhead(ayh, ayl)
	au0, au1, av0, av1 := uint64(1), uint64(0), uint64(0), uint64(1)
	ta, accA := 0, uint64(1)
	bxh, bxl := k.hx1[jb], k.hx2[jb]
	byh, byl := k.hy1[jb], k.hy2[jb]
	fbx, fby := fhead(bxh, bxl), fhead(byh, byl)
	bu0, bu1, bv0, bv1 := uint64(1), uint64(0), uint64(0), uint64(1)
	tb, accB := 0, uint64(1)
	for {
		aEnd := ayh < 4 || ta >= depth
		if !aEnd { // one phase-1 step of slot A
			// Branch-free quotient: one pipelined double divide over the
			// 53-bit truncated heads, corrected to the exact Euclid
			// quotient by multiply-back. The relative error is ~2^-51, so
			// below the 2^40 guard the estimate is within one of exact and
			// at most one correction fires — branches the predictor never
			// sees taken. The int64 conversion compiles to a bare truncating
			// instruction (no range-check compare on the divide's critical
			// path); an out-of-range result goes negative and lands in the
			// guard as a huge uint64. This replaces the Gauss-Kuzmin-random
			// peel-vs-divide branch of the single-lane path (which
			// mispredicts about every third step) and the unpipelined
			// 128/64 hardware divide.
			if accA > 1<<19 {
				// The float heads have amplified too much rounding error
				// (see the acc discussion above): re-derive them from the
				// exact integers, putting one head conversion back on the
				// chain every ~20 steps instead of every step.
				fax, fay = fhead(axh, axl), fhead(ayh, ayl)
				accA = 1
			}
			qf := math.Trunc(fax / fay)
			q := uint64(int64(qf))
			if q > 1<<12 {
				// Estimates beyond the drift-safe gate (or garbage from an
				// out-of-range conversion) are redone on freshly derived
				// floats, where the estimate is within one of exact up to
				// 2^40, and exactly beyond that. Gauss-Kuzmin puts ~0.02%
				// of quotients here.
				fax, fay = fhead(axh, axl), fhead(ayh, ayl)
				qf = math.Trunc(fax / fay)
				q = uint64(int64(qf))
				accA = q + 2
				if q >= 1<<40 {
					q = div128(axh, axl, ayh, ayl)
					qf = float64(q)
					// float64(q) may round for q >= 2^53, leaving fr too
					// coarse to trust: force a resync before the next
					// divide.
					accA = 1 << 62
				}
			} else {
				accA *= q + 2
			}
			// The float remainder comes straight off the float chain — one
			// fused multiply-add after the truncated divide — so the next
			// step's divide waits only div+trunc+fma, never the integer
			// remainder or its head conversion. fr inherits the heads'
			// accumulated error amplified by q (the same recurrence the
			// continuant coefficients obey). The bound is quadratic in the
			// bits stripped since the last resync: the absolute error grows
			// with the continuant coefficient (tracked by accA >= Π(q_i+2))
			// while the value it is measured against shrinks by the same
			// factor, so the relative error is ~accA^2 * 2^-52. Resyncing
			// above 2^19 with estimates gated at 2^12 keeps the estimate
			// error below 2^38 * 2^-52 * 2^12 = 1/4 — within the one-step
			// corrections.
			// The exact integer state below never drifts: it is verified by
			// multiply-back every step.
			fr := math.FMA(-qf, fay, fax)
			// Multiply-back. An overestimated q can push q*sy past 2^128
			// (sx close to 2^128, one-too-high q): the product's bit 128 —
			// h2 or the carry folding the cross term — then flags "too
			// high" even though the wrapped subtraction shows no borrow.
			hi, lo := bits.Mul64(ayl, q)
			h2, p1 := bits.Mul64(ayh, q)
			hi, ovc := bits.Add64(hi, p1, 0)
			rl, bb := bits.Sub64(axl, lo, 0)
			rh, neg := bits.Sub64(axh, hi, bb)
			if neg|h2|ovc != 0 { // estimate one too high: add one sy back
				q--
				rl, bb = bits.Add64(rl, ayl, 0)
				rh, _ = bits.Add64(rh, ayh, bb)
				fr += fay
			}
			if !lt128(rh, rl, ayh, ayl) { // one too low: strip one more sy
				q++
				rl, bb = bits.Sub64(rl, ayl, 0)
				rh, _ = bits.Sub64(rh, ayh, bb)
				fr -= fay
			}
			if rh < 4 {
				// Commit rule: the new sy would drop below 2^66, ending the
				// guard-free regime. The finisher recomputes this step with
				// the per-step guards.
				aEnd = true
			} else {
				// The continuant bound (sims >= 2^66 under the commit rule)
				// keeps the rows below 2^62, so the updates are plain
				// multiply-adds with no overflow or acceptance checks, hidden
				// in the shadow of the next step's divide. The new dividend
				// float is the old divisor's, so only the remainder is
				// converted.
				au0, au1, av0, av1 = av0, av1, q*av0+au0, q*av1+au1
				axh, axl, ayh, ayl = ayh, ayl, rh, rl
				fax, fay = fay, fr
				ta++
			}
		}
		if aEnd {
			k.finishFused(ja, axh, axl, ayh, ayl, au0, au1, av0, av1, ta)
			if next >= len(elig) {
				k.finishFused(jb, bxh, bxl, byh, byl, bu0, bu1, bv0, bv1, tb)
				return
			}
			ja = int(elig[next])
			next++
			axh, axl = k.hx1[ja], k.hx2[ja]
			ayh, ayl = k.hy1[ja], k.hy2[ja]
			fax, fay = fhead(axh, axl), fhead(ayh, ayl)
			au0, au1, av0, av1 = 1, 0, 0, 1
			ta, accA = 0, 1
		}
		bEnd := byh < 4 || tb >= depth
		if !bEnd { // one phase-1 step of slot B (the same float-quotient step)
			if accB > 1<<19 {
				fbx, fby = fhead(bxh, bxl), fhead(byh, byl)
				accB = 1
			}
			qf := math.Trunc(fbx / fby)
			q := uint64(int64(qf))
			if q > 1<<12 {
				fbx, fby = fhead(bxh, bxl), fhead(byh, byl)
				qf = math.Trunc(fbx / fby)
				q = uint64(int64(qf))
				accB = q + 2
				if q >= 1<<40 {
					q = div128(bxh, bxl, byh, byl)
					qf = float64(q)
					accB = 1 << 62
				}
			} else {
				accB *= q + 2
			}
			fr := math.FMA(-qf, fby, fbx)
			hi, lo := bits.Mul64(byl, q)
			h2, p1 := bits.Mul64(byh, q)
			hi, ovc := bits.Add64(hi, p1, 0)
			rl, bb := bits.Sub64(bxl, lo, 0)
			rh, neg := bits.Sub64(bxh, hi, bb)
			if neg|h2|ovc != 0 {
				q--
				rl, bb = bits.Add64(rl, byl, 0)
				rh, _ = bits.Add64(rh, byh, bb)
				fr += fby
			}
			if !lt128(rh, rl, byh, byl) {
				q++
				rl, bb = bits.Sub64(rl, byl, 0)
				rh, _ = bits.Sub64(rh, byh, bb)
				fr -= fby
			}
			if rh < 4 {
				bEnd = true
			} else {
				bu0, bu1, bv0, bv1 = bv0, bv1, q*bv0+bu0, q*bv1+bu1
				bxh, bxl, byh, byl = byh, byl, rh, rl
				fbx, fby = fby, fr
				tb++
			}
		}
		if bEnd {
			k.finishFused(jb, bxh, bxl, byh, byl, bu0, bu1, bv0, bv1, tb)
			if next >= len(elig) {
				k.finishFused(ja, axh, axl, ayh, ayl, au0, au1, av0, av1, ta)
				return
			}
			jb = int(elig[next])
			next++
			bxh, bxl = k.hx1[jb], k.hx2[jb]
			byh, byl = k.hy1[jb], k.hy2[jb]
			fbx, fby = fhead(bxh, bxl), fhead(byh, byl)
			bu0, bu1, bv0, bv1 = 1, 0, 0, 1
			tb, accB = 0, 1
		}
	}
}

// finishFused completes one lane of the fused queue: the guarded
// single-lane path takes the simulation state the rest of the way and
// applies the accumulated matrix, then the shared exchange/retire
// epilogue runs — or, when no step committed at all, the plain
// single-step fallback.
func (k *Kernel) finishFused(j int, sxh, sxl, syh, syl, u0, u1, v0, v1 uint64, t int) {
	if k.headBatchFrom(j, sxh, sxl, syh, syl, u0, u1, v0, v1, t) {
		k.exchangeAndRetire(j)
	} else {
		k.stepSlow(j)
	}
}

func (k *Kernel) headBatchFrom(j int, sxh, sxl, syh, syl, u0, u1, v0, v1 uint64, t int) bool {
	depth := int(k.depthCap)
	// Phase 1: sy still spans two words. While the remainder keeps its
	// top word the acceptance bound cannot fail (r >= 2^64 exceeds any
	// 64-bit row sum), so the steady-state step tests only coefficient
	// overflow; the boundary step that drops sy to one word takes the
	// acceptance test before committing. Quotients follow Gauss-Kuzmin
	// (~68% in {1,2,3}), and their values are irreducibly random, so the
	// small quotient and its remainder are picked with a branch-free
	// priority select over a single running subtraction chain — a
	// data-dependent branch per peel level would mispredict roughly
	// every other step.
	for syh != 0 && t < depth {
		// Running chain e_i = sx - i*sy. A borrow makes every later e
		// garbage, so the masks below are priority-gated on earlier
		// borrows before use.
		e1l, b := bits.Sub64(sxl, syl, 0)
		e1h, _ := bits.Sub64(sxh, syh, b) // sx >= sy: no borrow
		e2l, b := bits.Sub64(e1l, syl, 0)
		e2h, c2 := bits.Sub64(e1h, syh, b)
		e3l, b := bits.Sub64(e2l, syl, 0)
		e3h, c3 := bits.Sub64(e2h, syh, b)
		_, b = bits.Sub64(e3l, syl, 0)
		_, c4 := bits.Sub64(e3h, syh, b) // only the borrow of e4 is needed
		var q, rh, rl uint64
		if c2|c3|c4 == 0 {
			// q >= 4: exact 3-by-2 divide (q < 2^64 because syh >= 1),
			// remainder by multiply-back (q*sy <= sx < 2^128: exact in
			// the low 128 bits).
			q = div128(sxh, sxl, syh, syl)
			hi, lo := bits.Mul64(syl, q)
			hi += syh * q
			var br uint64
			rl, br = bits.Sub64(sxl, lo, 0)
			rh, _ = bits.Sub64(sxh, hi, br)
		} else {
			m1 := -c2
			m2 := -(c3 &^ c2)
			m3 := -(c4 &^ (c2 | c3))
			q = m1&1 | m2&2 | m3&3
			rh = m1&e1h | m2&e2h | m3&e3h
			rl = m1&e1l | m2&e2l | m3&e3l
		}
		// Candidate coefficient row, with overflow guards.
		h0, m0 := bits.Mul64(q, v0)
		h1, m1 := bits.Mul64(q, v1)
		nv0, c0 := bits.Add64(m0, u0, 0)
		nv1, c1 := bits.Add64(m1, u1, 0)
		if h0|c0|h1|c1 != 0 {
			goto done
		}
		if rh == 0 {
			// Boundary step: the new sy fits one word, so the acceptance
			// bound r >= nv0+nv1 is live again (see phase 2).
			sum, cs := bits.Add64(nv0, nv1, 0)
			if cs != 0 || rl < sum {
				goto done
			}
		}
		u0, u1, v0, v1 = v0, v1, nv0, nv1
		sxh, sxl, syh, syl = syh, syl, rh, rl
		t++
	}
	// Phase 2: sy fits one word (sx may still span two on entry). Every
	// step now takes the acceptance test: the post-step invariant
	// sim >= sum of its row's coefficients, for both rows, keeps the
	// eventual apply nonnegative. sy >= v0+v1 holds inductively for the
	// new X row; the new Y row needs r >= nv0+nv1. syl >= 1 here: every
	// committed step left the new sy at or above its row sum.
	for t < depth && syh == 0 {
		var q, rl uint64
		if sxh != 0 {
			if sxh >= syl {
				// The quotient exceeds 64 bits; such a step strips 64+
				// bits on its own, so end the batch and let the
				// full-precision path take it.
				goto done
			}
			q, rl = bits.Div64(sxh, sxl, syl)
		} else {
			switch d := sxl - syl; {
			case d < syl:
				q, rl = 1, d
			case d-syl < syl:
				q, rl = 2, d-syl
			case d-2*syl < syl:
				q, rl = 3, d-2*syl
			default:
				q = sxl / syl
				rl = sxl - q*syl
			}
		}
		h0, m0 := bits.Mul64(q, v0)
		h1, m1 := bits.Mul64(q, v1)
		nv0, c0 := bits.Add64(m0, u0, 0)
		nv1, c1 := bits.Add64(m1, u1, 0)
		if h0|c0|h1|c1 != 0 {
			goto done
		}
		sum, cs := bits.Add64(nv0, nv1, 0)
		if cs != 0 || rl < sum {
			goto done
		}
		u0, u1, v0, v1 = v0, v1, nv0, nv1
		sxh, sxl, syl = syh, syl, rl
		t++
	}
done:
	// Adaptive depth: grow the cap while cap-bound batches dominate the
	// window (acceptance would have admitted more), freeze otherwise.
	k.Telemetry.HeadSteps += int64(t)
	if k.adaptive {
		k.hbRuns++
		if t >= depth {
			k.hbCapHits++
			k.Telemetry.HeadCapHits++
		}
		if k.hbRuns >= adaptWindow {
			if capGrowDen*k.hbCapHits >= capGrowNum*k.hbRuns && k.depthCap < maxBatchDepth {
				k.depthCap *= 2
				if k.depthCap > maxBatchDepth {
					k.depthCap = maxBatchDepth
				}
			}
			k.hbRuns, k.hbCapHits = 0, 0
		}
		k.Telemetry.DepthCap = int64(k.depthCap)
	} else if t >= depth {
		k.Telemetry.HeadCapHits++
	}
	if t == 0 {
		return false
	}
	k.Telemetry.HeadBatches++
	// Apply the composed matrix. Signs alternate with step parity: after
	// an even number of steps the X row is (+u0, -u1) and the Y row
	// (-v0, +v1); odd parity flips both. Renaming the planes folds the
	// parity away: newX = a*P - b*Q and newY = d*Q - c*P.
	xm, ym := k.lanePlanes(j)
	var a, b, c, d uint64
	var pm, qm []uint64
	if t&1 == 0 {
		a, b, c, d = u0, u1, v0, v1
		pm, qm = xm, ym
	} else {
		a, b, c, d = u1, u0, v1, v0
		pm, qm = ym, xm
	}
	// Account the batch before the apply shrinks the lengths: t quotient
	// steps, one read and one write of each column, in the paper's
	// 32-bit-word units.
	k.memops[j] += 8 * int64(k.lx[j])
	k.applyLane(j, a, b, c, d, pm, qm, xm, ym)
	k.iters[j] += int32(t)
	return true
}

// applyLane streams newX = a*P - b*Q into the X plane and
// newY = d*Q - c*P into the Y plane in one fused column pass, with the
// same trailing-zero strip, head capture and zero-padding as sweepLane.
// P and Q are the X/Y planes in parity order; both write cursors trail
// the shared read cursor, so the update is in place.
func (k *Kernel) applyLane(j int, a, b, c, d uint64, pm, qm, xm, ym []uint64) {
	l := k.l
	lx := int(k.lx[j])
	var carA, carB, carC, carD uint64 // multiply carries of a*P, b*Q, c*P, d*Q
	var borX, borY uint64             // borrows of the two subtractions
	var pendX, pendY, shX, shY, lastX, lastY uint64
	startedX, startedY := false, false
	idx := j
	outX, outY := j, j
	outLenX, outLenY := 0, 0
	for i := 0; i < lx; i++ {
		pv, qv := pm[idx], qm[idx]
		idx += l

		hiA, loA := bits.Mul64(pv, a)
		loA, cc := bits.Add64(loA, carA, 0)
		carA = hiA + cc
		hiB, loB := bits.Mul64(qv, b)
		loB, cc = bits.Add64(loB, carB, 0)
		carB = hiB + cc
		dx, br := bits.Sub64(loA, loB, borX)
		borX = br

		hiD, loD := bits.Mul64(qv, d)
		loD, cc = bits.Add64(loD, carD, 0)
		carD = hiD + cc
		hiC, loC := bits.Mul64(pv, c)
		loC, cc = bits.Add64(loC, carC, 0)
		carC = hiC + cc
		dy, br2 := bits.Sub64(loD, loC, borY)
		borY = br2

		if startedX {
			w := pendX | dx<<(64-shX)
			xm[outX] = w
			lastX = w
			outX += l
			outLenX++
			pendX = dx >> shX
		} else if dx != 0 {
			startedX = true
			shX = uint64(bits.TrailingZeros64(dx))
			pendX = dx >> shX
		}
		if startedY {
			w := pendY | dy<<(64-shY)
			ym[outY] = w
			lastY = w
			outY += l
			outLenY++
			pendY = dy >> shY
		} else if dy != 0 {
			startedY = true
			shY = uint64(bits.TrailingZeros64(dy))
			pendY = dy >> shY
		}
	}
	// Both combinations are nonnegative and below 2^(64*lx): the
	// leftover multiply carries must cancel against the borrows.
	if carA != carB+borX || carD != carC+borY {
		panic("lanes: batch apply underflow")
	}
	newLenX := 0
	if startedX {
		xm[outX] = pendX
		newLenX = outLenX + 1
		k.hx1[j] = pendX
		k.hx2[j] = 0
		if outLenX > 0 {
			k.hx2[j] = lastX
		}
		if pendX == 0 {
			for newLenX > 0 && xm[(newLenX-1)*l+j] == 0 {
				newLenX--
			}
		}
	} else {
		k.hx1[j], k.hx2[j] = 0, 0
	}
	newLenY := 0
	if startedY {
		ym[outY] = pendY
		newLenY = outLenY + 1
		k.hy1[j] = pendY
		k.hy2[j] = 0
		if outLenY > 0 {
			k.hy2[j] = lastY
		}
		if pendY == 0 {
			for newLenY > 0 && ym[(newLenY-1)*l+j] == 0 {
				newLenY--
			}
		}
	} else {
		k.hy1[j], k.hy2[j] = 0, 0
	}
	for i := newLenX; i < lx; i++ {
		xm[i*l+j] = 0
	}
	for i := newLenY; i < lx; i++ {
		ym[i*l+j] = 0
	}
	k.lx[j] = int32(newLenX)
	k.ly[j] = int32(newLenY)
	if startedX && pendX == 0 {
		k.reloadXHead(j)
	}
	if startedY && pendY == 0 {
		k.reloadYHead(j)
	}
}
