package lanes

import (
	"math/big"
	"math/rand"
	"testing"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

// TestForcedDepthMatchesScalar sweeps pinned Lehmer head-batch depths —
// from the degenerate depth 1 (every superstep re-reads full heads)
// through the adaptive controller's whole range to 96 (far past
// maxBatchDepth, exercising the clamp) — across several lane widths,
// and requires results identical to the scalar kernel at every point.
// This is the differential gate for the adaptive-depth satellite: the
// batch depth is a pure performance knob, so any cap must be invisible
// in the findings (a shorter batch is just a shallower unimodular
// prefix applied more often).
func TestForcedDepthMatchesScalar(t *testing.T) {
	rnd := rand.New(rand.NewSource(91))
	const maxBits = 1024
	var pairs []Pair
	add := func(x, y *mpnat.Nat, early int) {
		pairs = append(pairs, Pair{A: len(pairs), B: ^len(pairs), X: x, Y: y, Early: early})
	}
	for _, bits := range []int{64, 127, 256, 1024} {
		for i := 0; i < 4; i++ {
			x, y := oddRand(rnd, bits), oddRand(rnd, bits)
			add(x, y, 0)
			add(x, y, bits/2)
		}
	}
	// Shared-factor pairs, where a depth-dependent drift would change a
	// finding rather than just a quotient sequence.
	for i := 0; i < 6; i++ {
		p := oddRand(rnd, 192)
		x := mpnat.FromBig(new(big.Int).Mul(p.ToBig(), oddRand(rnd, 192).ToBig()))
		y := mpnat.FromBig(new(big.Int).Mul(p.ToBig(), oddRand(rnd, 192).ToBig()))
		add(x, y, 0)
	}
	// Skewed pairs: deep batches hit the correction path hardest here.
	for i := 0; i < 6; i++ {
		add(oddRand(rnd, 1024), oddRand(rnd, 65), 0)
	}

	// Scalar oracle, computed once.
	s := gcd.NewScratch(maxBits)
	want := make([]*mpnat.Nat, len(pairs))
	for i, p := range pairs {
		g, _ := s.Compute(gcd.Approximate, p.X, p.Y, gcd.Options{EarlyBits: p.Early})
		if g != nil {
			want[i] = g.Clone()
		}
	}

	for _, width := range []int{1, 4, 16} {
		for _, depth := range []int{1, 2, 4, 96} {
			k := NewKernel(width, maxBits)
			k.SetBatchDepth(depth)
			res := k.Run(pairs)
			if len(res) != len(pairs) {
				t.Fatalf("width %d depth %d: %d results for %d pairs",
					width, depth, len(res), len(pairs))
			}
			for i, r := range res {
				if r.A != pairs[i].A || r.B != pairs[i].B {
					t.Fatalf("width %d depth %d pair %d: labels (%d,%d), want (%d,%d)",
						width, depth, i, r.A, r.B, pairs[i].A, pairs[i].B)
				}
				switch {
				case want[i] == nil && r.G == nil:
				case want[i] == nil || r.G == nil:
					t.Errorf("width %d depth %d pair %d (early=%d): got %s, want %s",
						width, depth, i, pairs[i].Early, hex(r.G), hex(want[i]))
				case r.G.Cmp(want[i]) != 0:
					t.Errorf("width %d depth %d pair %d: got %s, want %s",
						width, depth, i, r.G.Hex(), want[i].Hex())
				}
			}
		}
	}
}
