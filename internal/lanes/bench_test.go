package lanes

import (
	"fmt"
	"testing"
	"time"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/rsakey"
)

// BenchmarkLaneKernel races the lane-batched kernel against the scalar
// Approximate kernel over the same disjoint pairs of a 1024-bit planted
// corpus — the paper's RSA key size — with 1024 moduli (256 under
// -short), both single-threaded so the comparison is per-pair
// throughput of one worker, not pool scheduling. Each iteration runs
// the full pair set through both kernels; the benchmark reports ns/pair
// per kernel plus the speedup, cross-checks that the kernels produced
// identical verdicts, and fails outright if the lane kernel is not at
// least 3x faster per pair — the acceptance bound the head-batched
// simulation claims.
//
// The operand size matters to the ratio: the scalar kernel sweeps the
// full operand every iteration (O(n) per quotient step) while the lane
// kernel's head-batched steps are O(1), paying O(n) only once per
// ~32-step batch apply — so its advantage grows with the key size, from
// ~2.6x at 512 bits to >4x at 1024. The gate is enforced at the size
// the paper attacks.
func BenchmarkLaneKernel(b *testing.B) {
	count := 1024
	if testing.Short() {
		count = 512
	}
	const bits = 1024
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: count, Bits: bits, WeakPairs: 8, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	ms := c.Moduli()
	// Disjoint adjacent pairs keep the workload dominated by the coprime
	// early-terminate case, exactly like a bulk scan.
	pairs := make([]Pair, 0, count/2)
	for i := 0; i+1 < count; i += 2 {
		pairs = append(pairs, Pair{A: i, B: i + 1, X: ms[i], Y: ms[i+1], Early: bits / 2})
	}

	k := NewKernel(DefaultWidth, bits)
	scratch := gcd.NewScratch(bits)
	// Warm both kernels once and cross-check verdicts outside the timed
	// region: every pair must get the same early/exact answer.
	warm := k.Run(pairs)
	for i, p := range pairs {
		g, _ := scratch.Compute(gcd.Approximate, p.X, p.Y, gcd.Options{EarlyBits: p.Early})
		lg := warm[i].G
		if (g == nil) != (lg == nil) || (g != nil && g.Cmp(lg) != 0) {
			b.Fatalf("pair %d: lanes and scalar kernels disagree", i)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	var scalarDur, lanesDur time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for _, p := range pairs {
			scratch.Compute(gcd.Approximate, p.X, p.Y, gcd.Options{EarlyBits: p.Early})
		}
		scalarDur += time.Since(start)

		start = time.Now()
		k.Run(pairs)
		lanesDur += time.Since(start)
	}
	b.StopTimer()

	n := float64(b.N) * float64(len(pairs))
	scalarNs := float64(scalarDur.Nanoseconds()) / n
	lanesNs := float64(lanesDur.Nanoseconds()) / n
	speedup := scalarNs / lanesNs
	b.ReportMetric(scalarNs, "scalar-ns/pair")
	b.ReportMetric(lanesNs, "lanes-ns/pair")
	b.ReportMetric(speedup, "speedup")
	if speedup < 3.0 {
		b.Fatalf("lane kernel speedup %.2fx over scalar, need >= 3.0x (scalar %.0f ns/pair, lanes %.0f ns/pair)",
			speedup, scalarNs, lanesNs)
	}
}

// BenchmarkLaneKernelWidths sweeps the lane width to expose the
// occupancy trade-off: L=1 degenerates to scalar-like behaviour while
// wide batches amortize the lockstep sweep.
func BenchmarkLaneKernelWidths(b *testing.B) {
	const bits = 512
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: 512, Bits: bits, WeakPairs: 4, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	ms := c.Moduli()
	pairs := make([]Pair, 0, len(ms)/2)
	for i := 0; i+1 < len(ms); i += 2 {
		pairs = append(pairs, Pair{A: i, B: i + 1, X: ms[i], Y: ms[i+1], Early: bits / 2})
	}
	for _, width := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			k := NewKernel(width, bits)
			k.Run(pairs) // warm the arenas
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Run(pairs)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(len(pairs))), "ns/pair")
		})
	}
}
