package lanes

import (
	"math/big"
	"math/rand"
	"testing"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

// oddRand returns a random odd nat of exactly bits bits.
func oddRand(rnd *rand.Rand, bits int) *mpnat.Nat {
	v := new(big.Int).Rand(rnd, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
	v.SetBit(v, bits-1, 1)
	v.SetBit(v, 0, 1)
	return mpnat.FromBig(v)
}

// checkAgainstScalar runs every pair through a fresh kernel of the given
// width and compares each result with the scalar Approximate kernel.
func checkAgainstScalar(t *testing.T, width, maxBits int, pairs []Pair) {
	t.Helper()
	k := NewKernel(width, maxBits)
	res := k.Run(pairs)
	if len(res) != len(pairs) {
		t.Fatalf("width %d: %d results for %d pairs", width, len(res), len(pairs))
	}
	s := gcd.NewScratch(maxBits)
	for i, p := range pairs {
		want, _ := s.Compute(gcd.Approximate, p.X, p.Y, gcd.Options{EarlyBits: p.Early})
		got := res[i].G
		if res[i].A != p.A || res[i].B != p.B {
			t.Fatalf("width %d pair %d: labels (%d,%d), want (%d,%d)",
				width, i, res[i].A, res[i].B, p.A, p.B)
		}
		switch {
		case want == nil && got == nil:
		case want == nil || got == nil:
			t.Errorf("width %d pair %d (early=%d): got %v, want %v",
				width, i, p.Early, hex(got), hex(want))
		case got.Cmp(want) != 0:
			t.Errorf("width %d pair %d (early=%d): got %s, want %s",
				width, i, p.Early, got.Hex(), want.Hex())
		}
	}
}

func hex(n *mpnat.Nat) string {
	if n == nil {
		return "<early>"
	}
	return n.Hex()
}

// TestKernelMatchesScalar drives random pairs of many shapes through
// several lane widths — including L=1 and batches that leave the final
// supersteps ragged — and requires results identical to the scalar kernel.
func TestKernelMatchesScalar(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	const maxBits = 1024
	var pairs []Pair

	add := func(x, y *mpnat.Nat, early int) {
		pairs = append(pairs, Pair{A: len(pairs), B: -len(pairs), X: x, Y: y, Early: early})
	}

	// Random coprime-ish pairs across sizes, early on and off.
	for _, bits := range []int{64, 65, 127, 128, 192, 512, 1024} {
		for i := 0; i < 6; i++ {
			x, y := oddRand(rnd, bits), oddRand(rnd, bits)
			add(x, y, 0)
			add(x, y, bits/2)
		}
	}
	// Factor-sharing pairs: the bulk attack's payoff path.
	for i := 0; i < 8; i++ {
		p := oddRand(rnd, 256)
		x := mpnat.FromBig(new(big.Int).Mul(p.ToBig(), oddRand(rnd, 256).ToBig()))
		y := mpnat.FromBig(new(big.Int).Mul(p.ToBig(), oddRand(rnd, 256).ToBig()))
		add(x, y, 0)
		add(x, y, 256)
	}
	// Skewed lengths: exercises the ly == 1 and lx > ly approx cases and
	// the beta > 0 path.
	for i := 0; i < 8; i++ {
		add(oddRand(rnd, 1024), oddRand(rnd, 64), 0)
		add(oddRand(rnd, 1000), oddRand(rnd, 70), 0)
		add(oddRand(rnd, 512), oddRand(rnd, 129), 0)
	}
	// Divisibility and equality edges: Y | X retires with gcd Y; X == Y
	// drives the subtract-to-zero sweep path.
	for i := 0; i < 4; i++ {
		y := oddRand(rnd, 128)
		x := mpnat.FromBig(new(big.Int).Mul(y.ToBig(), oddRand(rnd, 512).ToBig()))
		add(x, y, 0)
		eq := oddRand(rnd, 320)
		add(eq, eq, 0)
		add(eq, eq, 160)
	}
	// Tiny operands: straight into the 64-bit tail.
	for i := 0; i < 8; i++ {
		add(mpnat.New(uint64(rnd.Int63())|1), mpnat.New(uint64(rnd.Int63())|1), 0)
		add(mpnat.New(uint64(rnd.Int63())|1), mpnat.New(3), 0)
	}

	for _, width := range []int{1, 3, 16} {
		checkAgainstScalar(t, width, maxBits, pairs)
	}
}

// TestKernelForcedBeta builds operands shaped so approx returns beta > 0
// with a top-limb ratio near 1 (the hardest correction cases) and checks
// them against the scalar kernel.
func TestKernelForcedBeta(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	var pairs []Pair
	for i := 0; i < 24; i++ {
		// X = Y * D^k + r with r tiny: the first approximation strips k
		// limbs at once and the top limbs nearly tie.
		y := oddRand(rnd, 64+rnd.Intn(129))
		k := 1 + rnd.Intn(6)
		x := new(big.Int).Lsh(y.ToBig(), uint(64*k))
		x.Add(x, big.NewInt(int64(rnd.Int31())|1))
		pairs = append(pairs, Pair{A: i, B: i, X: mpnat.FromBig(x), Y: y})
	}
	for _, width := range []int{1, 5, 16} {
		checkAgainstScalar(t, width, 1024, pairs)
	}
}

// TestKernelTelemetry checks the run counters add up.
func TestKernelTelemetry(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	var pairs []Pair
	for i := 0; i < 50; i++ {
		pairs = append(pairs, Pair{X: oddRand(rnd, 256), Y: oddRand(rnd, 256), Early: 128})
	}
	k := NewKernel(8, 256)
	k.Run(pairs[:30])
	k.Run(pairs[30:])
	tel := k.Telemetry
	if tel.Batches != 2 {
		t.Errorf("Batches = %d, want 2", tel.Batches)
	}
	if tel.Retirements != 50 {
		t.Errorf("Retirements = %d, want 50", tel.Retirements)
	}
	// Every retired lane beyond the initial loads of each batch is a refill.
	if want := int64(50 - 2*8); tel.Refills != want {
		t.Errorf("Refills = %d, want %d", tel.Refills, want)
	}
	if tel.LaneSlots != 8*tel.Supersteps {
		t.Errorf("LaneSlots = %d with %d supersteps at width 8", tel.LaneSlots, tel.Supersteps)
	}
	if tel.ActiveLanes <= 0 || tel.ActiveLanes > tel.LaneSlots {
		t.Errorf("ActiveLanes = %d out of range (LaneSlots = %d)", tel.ActiveLanes, tel.LaneSlots)
	}
	// Per-pair stats must be populated.
	res := k.Run(pairs[:4])
	for i, r := range res {
		if r.Stats.Iterations <= 0 || r.Stats.MemOps <= 0 {
			t.Errorf("pair %d: empty stats %+v", i, r.Stats)
		}
	}
}

// TestKernelZeroAllocSteadyState locks the arena contract: once warmed, a
// batch of coprime pairs runs with zero heap allocations (the gcd-is-1
// result is a shared constant, early terminations return nil).
func TestKernelZeroAllocSteadyState(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	var pairs []Pair
	for i := 0; i < 40; i++ {
		pairs = append(pairs, Pair{X: oddRand(rnd, 512), Y: oddRand(rnd, 512), Early: 256})
	}
	k := NewKernel(16, 512)
	k.Run(pairs) // warm the result buffer and conversion scratch
	got := testing.AllocsPerRun(10, func() {
		k.Run(pairs)
	})
	if got != 0 {
		t.Errorf("%.1f allocs per warmed batch, want 0", got)
	}
}
