package lanes

import (
	"math/big"
	"testing"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

// FuzzLanesMatchesScalar feeds arbitrary odd operands — optionally with a
// planted common factor — through the lane kernel at a fuzzed width and
// requires the result to match both the scalar Approximate kernel and the
// math/big GCD oracle, with and without early termination. The early
// threshold is the bulk engines' s/2, which keeps the findings-identity
// argument of DESIGN.md section 5e applicable: the gcd's size alone
// decides early versus exact, so all three must agree exactly.
func FuzzLanesMatchesScalar(f *testing.F) {
	f.Add([]byte{0xff}, []byte{0x03}, []byte{}, uint8(0), false)
	f.Add([]byte{0xab, 0xcd, 0xef, 0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc},
		[]byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99}, []byte{}, uint8(3), true)
	f.Add([]byte{0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
		[]byte{0x01}, []byte{0x0d}, uint8(15), false)
	f.Add([]byte{0x7f, 0xee, 0xdd}, []byte{0x7f, 0xee, 0xdd}, []byte{0x09}, uint8(1), true)

	f.Fuzz(func(t *testing.T, xb, yb, pb []byte, width uint8, useEarly bool) {
		x := new(big.Int).SetBytes(xb)
		y := new(big.Int).SetBytes(yb)
		x.SetBit(x, 0, 1) // the kernels require odd positive operands
		y.SetBit(y, 0, 1)
		if len(pb) > 0 {
			p := new(big.Int).SetBytes(pb)
			p.SetBit(p, 0, 1)
			x.Mul(x, p)
			y.Mul(y, p)
		}
		maxBits := x.BitLen()
		if yb := y.BitLen(); yb > maxBits {
			maxBits = yb
		}
		if maxBits > 4096 {
			return // cap the work per input
		}
		early := 0
		if useEarly {
			s := x.BitLen()
			if yb := y.BitLen(); yb < s {
				s = yb
			}
			early = s / 2
		}

		xn, yn := mpnat.FromBig(x), mpnat.FromBig(y)
		k := NewKernel(int(width%16)+1, maxBits)
		res := k.Run([]Pair{{X: xn, Y: yn, Early: early}})
		got := res[0].G

		want, _ := gcd.NewScratch(maxBits).Compute(gcd.Approximate, xn, yn, gcd.Options{EarlyBits: early})
		oracle := new(big.Int).GCD(nil, nil, x, y)

		if early > 0 && oracle.BitLen() < early {
			// gcd below the threshold: every kernel must early-terminate.
			if got != nil || want != nil {
				t.Fatalf("early=%d gcd=%v: lanes=%v scalar=%v, want both early-terminated",
					early, oracle, hex(got), hex(want))
			}
			return
		}
		if got == nil || want == nil {
			t.Fatalf("early=%d gcd=%v: lanes=%v scalar=%v, want both exact",
				early, oracle, hex(got), hex(want))
		}
		if got.ToBig().Cmp(oracle) != 0 {
			t.Fatalf("lanes gcd = %s, oracle %v", got.Hex(), oracle)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("lanes gcd = %s, scalar %s", got.Hex(), want.Hex())
		}
	})
}
