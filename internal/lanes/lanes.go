// Package lanes implements the lane-batched bulk GCD kernel: L
// Approximate-Euclidean GCDs executed in lockstep over a column-major
// operand matrix, the CPU analog of the paper's one-thread-per-GCD bulk
// execution (Section VI). Where the scalar kernel (internal/gcd) walks one
// pair at a time over row-major mpnat values, this kernel stores limb i of
// lane j at m[i*L+j] — the ColumnWise convention of internal/umm/layout.go,
// the order that coalesces on the UMM device model — and advances every
// lane by one iteration per superstep.
//
// Lockstep execution follows the paper's semi-obliviousness argument: the
// Approximate algorithm's per-iteration work depends only on the operand
// lengths, which start equal for same-size moduli and shrink together, so
// lanes rarely diverge. Data-dependent steps avoid divergent data movement:
// the X/Y exchange is a masked flip of a per-lane plane selector plus a
// masked length exchange (no limbs move), and the strip shift is a per-lane
// register carried through the fused sweep. The rare beta > 0 update and
// the sub-64-bit tail run per lane, mirroring how a GPU serializes
// divergent threads.
//
// The kernel is internally 64-bit: two of the paper's d = 32 words are
// packed per limb, which halves both the iteration count (each quotient
// approximation removes about one 64-bit limb's worth of bits) and the
// limbs touched per sweep. Findings are nonetheless byte-identical to the
// scalar kernel: every update is X <- rshift(X - m*Y) for an odd m with
// 1 <= m*Y <= X, which preserves gcd(X, Y) exactly, and the early/exact
// termination outcome is a function of that invariant alone (see
// DESIGN.md section 5e for the argument).
//
// Steady state runs at zero allocations per pair: operand matrices,
// per-lane registers and the result buffer live in per-worker arenas
// sized once at construction; only returned non-trivial factors are
// cloned (and a gcd of 1 returns a shared constant), matching the scalar
// Scratch contract.
package lanes

import (
	"fmt"
	"math/bits"

	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
)

// DefaultWidth is the default lane count L. 16 lanes of 4096-bit
// operands keep both matrices inside 64 KiB — resident in L1/L2 — while
// amortizing the per-superstep classification work.
const DefaultWidth = 16

// Pair is one GCD task: the labels A, B are echoed in the Result, X and Y
// must be odd and positive (the contract of the scalar loops), and Early,
// when positive, early-terminates the lane as soon as Y drops below Early
// bits — exactly the scalar kernel's Options.EarlyBits.
type Pair struct {
	A, B  int
	X, Y  *mpnat.Nat
	Early int
}

// Result is one retired pair. G follows the scalar Compute contract: nil
// means early-terminated (coprime at RSA scale), a shared constant 1 for
// exactly coprime pairs, and a freshly cloned factor otherwise. G must
// not be modified by callers.
type Result struct {
	A, B  int
	G     *mpnat.Nat
	Stats gcd.Stats
}

// Telemetry counts what the kernel did, for the bulk_lanes_* metrics.
// Fields accumulate across Run calls; callers snapshot and diff.
type Telemetry struct {
	// Batches counts Run invocations.
	Batches int64
	// Supersteps counts lockstep iterations over the lane matrix.
	Supersteps int64
	// Retirements counts lanes that finished a pair (exact or early).
	Retirements int64
	// Refills counts retired lane slots immediately reloaded with a
	// pending pair (initial loads are not refills).
	Refills int64
	// LaneSlots is Supersteps * L; ActiveLanes sums the occupied lanes at
	// each superstep, so ActiveLanes/LaneSlots is the mean occupancy.
	LaneSlots   int64
	ActiveLanes int64
	// HeadBatches counts applied head-batched quotient compositions;
	// HeadSteps sums the quotient steps they composed, so
	// HeadSteps/HeadBatches is the realized batch depth. HeadCapHits
	// counts batches ended by the adaptive depth cap rather than the
	// acceptance bound, and DepthCap snapshots the cap's current value.
	HeadBatches int64
	HeadSteps   int64
	HeadCapHits int64
	DepthCap    int64
}

// one is the shared gcd-is-1 result, mirroring the scalar kernel.
var one = mpnat.New(1)

// Kernel is a lane-batched GCD executor. A Kernel is not safe for
// concurrent use; the bulk layer holds one per worker.
type Kernel struct {
	// Telemetry accumulates run counters; see the type's field docs.
	Telemetry Telemetry

	l     int // lane count L
	limbs int // 64-bit limb capacity per operand

	// Column-major operand matrices: limb i of lane j at [i*l+j], always
	// zero-padded above the lane's active length so that columnar sweeps
	// can run to a shared bound without per-lane bounds checks. Which
	// plane holds lane j's X is selected by xsel[j], so the frequent
	// X <-> Y exchange flips a bit instead of moving limbs.
	a, b   []uint64
	planes [2][]uint64 // {a, b}, indexed by xsel for a branch-free select
	xsel   []uint8     // 0: X in a, Y in b; 1: the other way

	// Per-lane registers.
	lx, ly    []int32 // active limb lengths, X >= Y maintained
	early     []int32 // early-termination bit threshold (0 = off)
	slot      []int32 // result index of the resident pair; -1 = free
	iters     []int32 // iteration count of the resident pair
	tailIters []int32 // iterations spent in the 64-bit tail
	betaCnt   []int32 // beta > 0 updates of the resident pair
	memops    []int64 // word-level memory ops (32-bit-word equivalents)

	// Head registers: the top two limbs of each operand, maintained
	// across iterations (the sweep emits them as it writes, the masked
	// exchange swaps them along with the lengths). The quotient
	// approximation, the X/Y comparison and the early-termination check
	// are functions of lengths and heads alone, so the steady-state
	// iteration touches the operand matrix only inside the sweep.
	hx1, hx2 []uint64 // top and second limb of X (undefined above lx)
	hy1, hy2 []uint64 // top and second limb of Y (undefined above ly)

	utmp []uint64 // beta > 0 scratch: one extracted lane, limbs+1
	elig []int32  // superstep scratch: head-batch-eligible lanes in order

	// Adaptive head-batch depth controller (see lehmer64.go): the cap
	// grows while most batches in a window end cap-bound and freezes once
	// the acceptance-rejection rate takes over. SetBatchDepth pins it.
	depthCap  int32
	adaptive  bool
	hbRuns    int32
	hbCapHits int32

	results   []Result
	conv      mpnat.Nat // limb-to-Nat conversion scratch for retirements
	convWords []uint32

	batch    []Pair
	next     int
	occupied int
}

// NewKernel returns a Kernel with width lanes sized for operands up to
// maxBits wide. width < 1 selects DefaultWidth.
func NewKernel(width, maxBits int) *Kernel {
	if width < 1 {
		width = DefaultWidth
	}
	limbs := (maxBits+63)/64 + 1
	k := &Kernel{
		l:     width,
		limbs: limbs,
		a:     make([]uint64, limbs*width),
		b:     make([]uint64, limbs*width),
		xsel:  make([]uint8, width),

		lx:        make([]int32, width),
		ly:        make([]int32, width),
		early:     make([]int32, width),
		slot:      make([]int32, width),
		iters:     make([]int32, width),
		tailIters: make([]int32, width),
		betaCnt:   make([]int32, width),
		memops:    make([]int64, width),

		hx1: make([]uint64, width),
		hx2: make([]uint64, width),
		hy1: make([]uint64, width),
		hy2: make([]uint64, width),

		utmp:      make([]uint64, limbs+1),
		elig:      make([]int32, 0, width),
		convWords: make([]uint32, 0, 2*limbs),

		depthCap: initialBatchDepth,
		adaptive: true,
	}
	k.planes = [2][]uint64{k.a, k.b}
	for j := range k.slot {
		k.slot[j] = -1
	}
	k.conv.Grow(2 * limbs)
	return k
}

// Width returns the lane count L.
func (k *Kernel) Width() int { return k.l }

// SetBatchDepth pins the head-batch depth cap to d and disables the
// adaptive controller; d < 1 restores the adaptive default. Any cap
// yields identical findings — a shorter batch is just a shallower
// unimodular prefix — so this exists for differential tests that sweep
// forced depths, and for experiments.
func (k *Kernel) SetBatchDepth(d int) {
	if d < 1 {
		k.depthCap = initialBatchDepth
		k.adaptive = true
		k.hbRuns, k.hbCapHits = 0, 0
		return
	}
	if d > maxBatchDepth {
		d = maxBatchDepth
	}
	k.depthCap = int32(d)
	k.adaptive = false
}

// BatchDepth returns the current head-batch depth cap.
func (k *Kernel) BatchDepth() int { return int(k.depthCap) }

// lanePlanes returns lane j's X and Y matrices per its plane selector.
// The swap decision is a coin flip on random operands, so the selector
// indexes an array of the two planes instead of branching.
func (k *Kernel) lanePlanes(j int) (xm, ym []uint64) {
	s := k.xsel[j] & 1
	return k.planes[s], k.planes[1^s]
}

// Run executes every pair of the batch, filling lanes in input order and
// refilling each retired lane from the pending stream (the final batches
// run ragged as the stream dries up). The returned slice is indexed like
// pairs — results are in input order regardless of retirement order —
// and is only valid until the next Run.
func (k *Kernel) Run(pairs []Pair) []Result {
	if cap(k.results) < len(pairs) {
		k.results = make([]Result, len(pairs))
	}
	k.results = k.results[:len(pairs)]
	for i := range k.results {
		k.results[i] = Result{A: pairs[i].A, B: pairs[i].B}
	}
	k.Telemetry.Batches++
	k.batch = pairs
	k.next = 0
	for j := 0; j < k.l && k.next < len(pairs); j++ {
		k.load(j, false)
	}
	for k.occupied > 0 {
		k.superstep()
	}
	k.batch = nil
	return k.results
}

// load converts the next pending pair into lane j's columns, larger
// operand first, and zero-pads both columns to the matrix height.
func (k *Kernel) load(j int, refill bool) {
	p := &k.batch[k.next]
	idx := k.next
	k.next++
	x, y := p.X, p.Y
	if x.Cmp(y) < 0 {
		x, y = y, x
	}
	if x.BitLen() > 64*(k.limbs-1) {
		panic(fmt.Sprintf("lanes: %d-bit operand exceeds kernel capacity", x.BitLen()))
	}
	k.xsel[j] = 0
	k.lx[j] = int32(k.fill(k.a, j, x))
	k.ly[j] = int32(k.fill(k.b, j, y))
	k.reloadXHead(j)
	k.reloadYHead(j)
	k.early[j] = int32(p.Early)
	k.slot[j] = int32(idx)
	k.iters[j] = 0
	k.tailIters[j] = 0
	k.betaCnt[j] = 0
	k.memops[j] = 0
	k.occupied++
	if refill {
		k.Telemetry.Refills++
	}
}

// reloadXHead refreshes lane j's X head registers from its column, for
// the paths that rewrite the column without streaming through the head
// (load, the beta > 0 update, and the rare top-cancellation sweep).
func (k *Kernel) reloadXHead(j int) {
	xm, _ := k.lanePlanes(j)
	l := k.l
	k.hx1[j], k.hx2[j] = 0, 0
	if n := int(k.lx[j]); n > 0 {
		k.hx1[j] = xm[(n-1)*l+j]
		if n > 1 {
			k.hx2[j] = xm[(n-2)*l+j]
		}
	}
}

// reloadYHead is reloadXHead for the Y side (load only: sweeps never
// touch Y).
func (k *Kernel) reloadYHead(j int) {
	_, ym := k.lanePlanes(j)
	l := k.l
	k.hy1[j], k.hy2[j] = 0, 0
	if n := int(k.ly[j]); n > 0 {
		k.hy1[j] = ym[(n-1)*l+j]
		if n > 1 {
			k.hy2[j] = ym[(n-2)*l+j]
		}
	}
}

// fill packs a Nat's 32-bit words into lane j of matrix m as 64-bit
// limbs, returning the limb count.
func (k *Kernel) fill(m []uint64, j int, v *mpnat.Nat) int {
	ws := v.Words()
	n := (len(ws) + 1) / 2
	for i := 0; i < n; i++ {
		lo := uint64(ws[2*i])
		var hi uint64
		if 2*i+1 < len(ws) {
			hi = uint64(ws[2*i+1])
		}
		m[i*k.l+j] = lo | hi<<32
	}
	for i := n; i < k.limbs; i++ {
		m[i*k.l+j] = 0
	}
	return n
}

// superstep advances every occupied lane by one iteration. The per-lane
// step is fused — classify, approximate, sweep, masked swap, retirement
// check run back to back while the lane's registers are hot — rather
// than phased over the whole matrix, which was measured to spend a
// quarter of the kernel in list-building and re-loading lane state.
func (k *Kernel) superstep() {
	k.Telemetry.Supersteps++
	k.Telemetry.LaneSlots += int64(k.l)
	k.Telemetry.ActiveLanes += int64(k.occupied)
	// Collect head-batch-eligible lanes and stream them through the
	// two-slot fused simulation queue (see runFusedQueue): the sim is
	// latency-bound, and two independent chains nearly double its
	// throughput. Collection order is a pure function of lane state, so
	// execution stays deterministic; lanes are independent, so results
	// are unchanged.
	elig := k.elig[:0]
	for j := 0; j < k.l; j++ {
		if k.slot[j] < 0 {
			continue
		}
		if k.lx[j] > 2 && k.lx[j] == k.ly[j] {
			elig = append(elig, int32(j))
			continue
		}
		k.stepLane(j)
	}
	if len(elig) >= 2 {
		k.runFusedQueue(elig)
	} else if len(elig) == 1 {
		k.stepLane(int(elig[0]))
	}
}

// stepLane runs one iteration of lane j: quotient approximation, the
// fused update sweep (or a serialized divergent path: the 64-bit tail,
// the rare beta > 0 update), then the branch-free masked X <-> Y
// exchange and the termination check — the same order as the scalar
// Approximate loop.
func (k *Kernel) stepLane(j int) {
	if k.lx[j] <= 2 {
		// Both operands fit the head registers: finish in the exact
		// 128-bit register tail (the endgame analog of approx Case 1),
		// with no matrix traffic at all. A lane refilled by the
		// retirement joins the lockstep at the next superstep.
		k.tail128(j)
		return
	}
	if k.lx[j] == k.ly[j] && k.headBatch(j) {
		// A head batch composed several quotient steps and applied them
		// in one fused column pass; it already updated lengths, heads
		// and the iteration/memory accounting. Fall through to the
		// masked exchange and retirement check shared with the
		// single-step path.
		k.exchangeAndRetire(j)
		return
	}
	k.stepSlow(j)
}

// stepSlow is the single-step fallback: the quotient approximation and
// the per-step fused sweep (or the rare serialized beta > 0 update),
// shared by stepLane and the unpaired tail of a head-batch pair.
func (k *Kernel) stepSlow(j int) {
	alpha, beta := approx64(k.lx[j], k.ly[j], k.hx1[j], k.hx2[j], k.hy1[j], k.hy2[j])
	// Memory-op accounting in the paper's 32-bit-word units: each limb
	// is two words, each iteration reads X, reads Y and writes X; the
	// beta > 0 path re-reads Y (Section IV's 4*s/d iteration).
	lxw, lyw := 2*int64(k.lx[j]), 2*int64(k.ly[j])
	if beta > 0 {
		k.memops[j] += 2*lxw + 2*lyw
		k.betaUpdate(j, alpha, beta)
		k.reloadXHead(j)
	} else {
		if alpha&1 == 0 { // make the multiplier odd, as the scalar kernel does
			alpha--
		}
		k.memops[j] += 2*lxw + lyw
		k.sweepLane(j, alpha)
	}
	k.iters[j]++
	k.exchangeAndRetire(j)
}

// exchangeAndRetire is the epilogue both update paths share. Masked
// exchange: where X < Y, flip the plane selector and exchange the
// lengths and head registers — no limbs move. Then retire on
// termination, checked after the update like the scalar loops: Y zero
// means the gcd is X; otherwise Y's bit length — a function of its
// length and top head register — decides early termination.
func (k *Kernel) exchangeAndRetire(j int) {
	m := k.cmpMask(j)
	mm := uint64(int64(m))
	k.xsel[j] ^= uint8(m & 1)
	t := (k.lx[j] ^ k.ly[j]) & m
	k.lx[j] ^= t
	k.ly[j] ^= t
	h := (k.hx1[j] ^ k.hy1[j]) & mm
	k.hx1[j] ^= h
	k.hy1[j] ^= h
	h = (k.hx2[j] ^ k.hy2[j]) & mm
	k.hx2[j] ^= h
	k.hy2[j] ^= h
	nly := int(k.ly[j])
	if nly == 0 {
		k.retire(j, false)
		return
	}
	if e := int(k.early[j]); e > 0 && (nly-1)*64+bits.Len64(k.hy1[j]) < e {
		k.retire(j, true)
	}
}

// sweepLane is the hot path: the fused X <- rshift(X - alpha*Y) update of
// mpnat.SubMulRshift over lane j's column. The multiply carry, borrow,
// strip-shift discovery and the trailing write cursor all live in
// registers for the whole column walk; the write cursor trails the read
// cursor, so the update is in place. Y's column is zero-padded above ly,
// so the loop runs to lx without a per-limb length check. alpha == 1 —
// the most common multiplier by the Gauss-Kuzmin law, and the only one
// the equal-length x128 <= y128 case produces — takes a multiply-free
// subtract-only walk.
func (k *Kernel) sweepLane(j int, alpha uint64) {
	xm, ym := k.lanePlanes(j)
	l := k.l
	lx := int(k.lx[j])
	var borrow, pending, sh, last uint64
	started := false
	idx := j    // read cursor: limb i at column j
	out := j    // write cursor, trailing idx by the stripped whole limbs
	outLen := 0 // limbs written through out
	if alpha == 1 {
		for i := 0; i < lx; i++ {
			d, br := bits.Sub64(xm[idx], ym[idx], borrow)
			borrow = br
			idx += l
			if started {
				// d<<(64-sh) is 0 in Go when sh == 0, which is exactly right.
				w := pending | d<<(64-sh)
				xm[out] = w
				last = w
				out += l
				outLen++
				pending = d >> sh
			} else if d != 0 {
				started = true
				sh = uint64(bits.TrailingZeros64(d))
				pending = d >> sh
			}
		}
		if borrow != 0 {
			panic("lanes: sweep underflow")
		}
	} else {
		var mulCarry uint64
		for i := 0; i < lx; i++ {
			hi, lo := bits.Mul64(ym[idx], alpha)
			lo, c := bits.Add64(lo, mulCarry, 0)
			mulCarry = hi + c
			d, br := bits.Sub64(xm[idx], lo, borrow)
			borrow = br
			idx += l
			if started {
				w := pending | d<<(64-sh)
				xm[out] = w
				last = w
				out += l
				outLen++
				pending = d >> sh
			} else if d != 0 {
				started = true
				sh = uint64(bits.TrailingZeros64(d))
				pending = d >> sh
			}
		}
		if borrow != 0 || mulCarry != 0 {
			panic("lanes: sweep underflow")
		}
	}
	newLen := 0
	if started {
		xm[out] = pending
		newLen = outLen + 1
		// The final pending limb and the last streamed write are the new
		// top two limbs — captured here so the next iteration's approx,
		// compare and retire check stay matrix-free.
		k.hx1[j] = pending
		k.hx2[j] = 0
		if outLen > 0 {
			k.hx2[j] = last
		}
		if pending == 0 {
			// Top-limb cancellation: trim the zero top (and any zeros
			// below it) and re-derive the heads from the column. Rare —
			// the strip shift keeps the top limb non-zero unless the
			// subtraction cancelled the high bits outright.
			for newLen > 0 && xm[(newLen-1)*l+j] == 0 {
				newLen--
			}
		}
	} else {
		k.hx1[j], k.hx2[j] = 0, 0
	}
	// Restore the zero-padding invariant above the new length.
	for i := newLen; i < lx; i++ {
		xm[i*l+j] = 0
	}
	k.lx[j] = int32(newLen)
	if started && pending == 0 {
		k.reloadXHead(j)
	}
}

// cmpMask returns an all-ones mask when lane j's X < Y and zero
// otherwise — the paper's Section IV length-first comparison, computed
// arithmetically over the lengths and head registers. The swap decision
// is a coin flip on random operands, so the (length, top limb, second
// limb) ordering — lexicographic for normalized operands — is folded
// into one borrow chain instead of a value branch the predictor would
// miss half the time. The descent below the heads runs only when
// lengths and both head limbs all match, which random operands
// essentially never produce, so its guarding branch stays predictable.
func (k *Kernel) cmpMask(j int) int32 {
	lxv, lyv := k.lx[j], k.ly[j]
	if lxv == 0 || lyv == 0 {
		// A zero operand is smaller than anything but zero. lx == 0 can
		// happen transiently when a sweep cancels X entirely.
		return (lxv - lyv) >> 31
	}
	if lxv == lyv && k.hx1[j] == k.hy1[j] && k.hx2[j] == k.hy2[j] {
		return k.cmpDeep(j)
	}
	_, br := bits.Sub64(k.hx2[j], k.hy2[j], 0)
	_, br = bits.Sub64(k.hx1[j], k.hy1[j], br)
	_, br = bits.Sub64(uint64(uint32(lxv)), uint64(uint32(lyv)), br)
	return -int32(br)
}

// cmpDeep resolves the X < Y mask when lengths and both head limbs
// match: scan the columns below the heads, most significant first.
func (k *Kernel) cmpDeep(j int) int32 {
	xm, ym := k.lanePlanes(j)
	l := k.l
	for i := int(k.lx[j]) - 3; i >= 0; i-- {
		if xv, yv := xm[i*l+j], ym[i*l+j]; xv != yv {
			_, br := bits.Sub64(xv, yv, 0)
			return -int32(br)
		}
	}
	return 0
}

// retire emits lane j's result into its slot and refills the lane from
// the pending stream when pairs remain.
func (k *Kernel) retire(j int, early bool) {
	res := &k.results[k.slot[j]]
	st := &res.Stats
	st.Iterations = int(k.iters[j])
	st.BetaNonZero = int(k.betaCnt[j])
	st.MemOps = k.memops[j]
	st.CaseCounts[gcd.Case1] = int(k.tailIters[j])
	if early {
		st.EarlyTerminated = true
		res.G = nil
	} else {
		g := k.natFromLane(j)
		if g.IsOne() {
			res.G = one
		} else {
			res.G = g.Clone()
		}
	}
	k.slot[j] = -1
	k.occupied--
	k.Telemetry.Retirements++
	if k.next < len(k.batch) {
		k.load(j, true)
	}
}

// natFromLane converts lane j's X column into the conversion scratch.
// The returned Nat is only valid until the next retirement.
func (k *Kernel) natFromLane(j int) *mpnat.Nat {
	xm, _ := k.lanePlanes(j)
	ws := k.convWords[:0]
	for i := 0; i < int(k.lx[j]); i++ {
		v := xm[i*k.l+j]
		ws = append(ws, uint32(v), uint32(v>>32))
	}
	k.convWords = ws
	return k.conv.SetWords(ws)
}
