package corpus

import (
	"bytes"
	"strings"
	"testing"

	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/rsakey"
)

func TestRoundTrip(t *testing.T) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: 10, Bits: 128, WeakPairs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c.Moduli(), "test corpus\nsecond comment line"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# test corpus\n# second comment line\n") {
		t.Fatalf("comment header missing:\n%s", out[:80])
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("read %d moduli, want 10", len(got))
	}
	for i := range got {
		if got[i].Cmp(c.Moduli()[i]) != 0 {
			t.Fatalf("modulus %d mismatch", i)
		}
	}
}

func TestReadSkipsBlanksAndComments(t *testing.T) {
	in := "# header\n\n   \nff\n# inline comment\n2b\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Uint64() != 0xff || got[1].Uint64() != 0x2b {
		t.Fatalf("parsed %v", got)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad hex":      "zz\n",
		"zero modulus": "0\n",
		"even modulus": "10\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadErrorMentionsLine(t *testing.T) {
	_, err := Read(strings.NewReader("ff\n\nzz\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v does not cite line 3", err)
	}
}

func TestWriteNilModulus(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []*mpnat.Nat{nil}, ""); err == nil {
		t.Fatal("nil modulus accepted")
	}
}

func TestEmptyCorpus(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil, ""); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty corpus read as %d moduli", len(got))
	}
}

func TestLargeModulus(t *testing.T) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{Count: 2, Bits: 4096, Seed: 4, Pseudo: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c.Moduli(), ""); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].BitLen() != 4096 {
		t.Fatalf("bit length %d after round trip", got[0].BitLen())
	}
}

// FuzzRead exercises the parser on arbitrary input: it must never panic,
// and anything it accepts must round-trip through Write.
func FuzzRead(f *testing.F) {
	f.Add("# comment\nff\n2b\n")
	f.Add("")
	f.Add("zz")
	f.Add("0")
	f.Add("ff\n\n#x\nab\n")
	f.Fuzz(func(t *testing.T, in string) {
		ms, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, ms, ""); err != nil {
			t.Fatalf("accepted corpus failed to serialize: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("serialized corpus failed to parse: %v", err)
		}
		if len(back) != len(ms) {
			t.Fatalf("round trip changed corpus size: %d -> %d", len(ms), len(back))
		}
		for i := range ms {
			if back[i].Cmp(ms[i]) != 0 {
				t.Fatalf("round trip changed modulus %d", i)
			}
		}
	})
}
