package corpus

// Source is the one ingestion path for every corpus consumer: the batch
// CLIs, the fleet worker, and the streaming registry all iterate the
// same way over either on-disk format (hex lines or PEM streams), so
// format detection, validation, and per-record skip reporting live in
// exactly one place.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"

	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/pemkeys"
)

// Validate reports why n cannot be an RSA modulus, or "" when it can.
// The strings double as skip/quarantine reasons, so every layer that
// classifies a bad modulus (strict readers, the engines' quarantine,
// the registry's malformed verdict) agrees on the wording.
func Validate(n *mpnat.Nat) string {
	if n.IsZero() {
		return "zero modulus"
	}
	if n.IsEven() {
		return "even modulus (not an RSA modulus)"
	}
	return ""
}

// Record is one ingested modulus.
type Record struct {
	// Index is the record's 0-based position among accepted moduli —
	// the key index every finding and verdict refers to.
	Index int
	N     *mpnat.Nat
	// Line is the 1-based input line for hex corpora (0 for PEM input).
	Line int
	// PEM carries provenance (block type, exponent) when the input was
	// a PEM stream; nil for hex corpora.
	PEM *pemkeys.Source
}

// Skip describes one input record that yielded no modulus, preserving
// the per-record reason for the consumer to report.
type Skip struct {
	// Pos is the PEM block index (hex lines never skip: a bad line is a
	// hard error, because silently dropping corpus entries would shift
	// every later key index).
	Pos    int
	Label  string // PEM block type as it appeared in the stream
	Reason string
}

// sniffWindow bounds how far Source looks for PEM armour before
// committing to the hex line format. PEM streams whose first armour
// line starts beyond it are not detected; collected key sets put the
// armour within the first few lines.
const sniffWindow = 64 * 1024

// Source streams records from a reader, bufio.Scanner style:
//
//	src := corpus.NewSource(r)
//	for src.Next() {
//		rec := src.Record()
//		...
//	}
//	if err := src.Err(); err != nil { ... }
//
// The format is sniffed from the first bytes: input containing PEM
// armour goes through pemkeys (buffered in full, as PEM decoding
// requires); anything else is the line-oriented hex format, streamed
// line by line without loading the corpus into memory.
type Source struct {
	br      *bufio.Reader
	strict  bool
	sniffed bool

	// hex path
	sc     *bufio.Scanner
	lineNo int

	// pem path
	isPEM   bool
	pemRecs []Record
	pemPos  int

	rec   Record
	count int
	skips []Skip
	err   error
}

// NewSource streams r strictly: zero and even moduli are errors, so
// downstream layers can assume valid inputs (the Read contract).
func NewSource(r io.Reader) *Source { return newSource(r, true) }

// NewLenientSource streams r keeping zero and even moduli, leaving
// classification to the caller (the engines' per-index quarantine, the
// registry's malformed verdict — see Validate).
func NewLenientSource(r io.Reader) *Source { return newSource(r, false) }

func newSource(r io.Reader, strict bool) *Source {
	return &Source{br: bufio.NewReaderSize(r, sniffWindow), strict: strict}
}

// sniff commits to a format on first use.
func (s *Source) sniff() {
	s.sniffed = true
	window, err := s.br.Peek(sniffWindow)
	if err != nil && err != io.EOF && err != bufio.ErrBufferFull {
		s.err = fmt.Errorf("corpus: %w", err)
		return
	}
	if !bytes.Contains(window, []byte("-----BEGIN ")) {
		s.sc = bufio.NewScanner(s.br)
		s.sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		return
	}
	s.isPEM = true
	data, err := io.ReadAll(s.br)
	if err != nil {
		s.err = fmt.Errorf("corpus: %w", err)
		return
	}
	bigs, srcs, skipped, err := pemkeys.ReadModuli(bytes.NewReader(data))
	if err != nil {
		s.err = fmt.Errorf("corpus: %w", err)
		return
	}
	for _, sk := range skipped {
		s.skips = append(s.skips, Skip{Pos: sk.Index, Label: sk.Type, Reason: sk.Reason})
	}
	s.pemRecs = make([]Record, 0, len(bigs))
	for i, n := range bigs {
		m := mpnat.FromBig(n)
		if s.strict {
			if reason := Validate(m); reason != "" {
				s.err = fmt.Errorf("corpus: PEM key %d: %s", i, reason)
				return
			}
		}
		src := srcs[i]
		s.pemRecs = append(s.pemRecs, Record{N: m, PEM: &src})
	}
}

// Next advances to the next record, returning false at the end of the
// input or on the first error (see Err).
func (s *Source) Next() bool {
	if s.err != nil {
		return false
	}
	if !s.sniffed {
		s.sniff()
		if s.err != nil {
			return false
		}
	}
	if s.isPEM {
		if s.pemPos >= len(s.pemRecs) {
			return false
		}
		s.rec = s.pemRecs[s.pemPos]
		s.rec.Index = s.count
		s.pemPos++
		s.count++
		return true
	}
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := mpnat.ParseHex(line)
		if err != nil {
			s.err = fmt.Errorf("corpus: line %d: %w", s.lineNo, err)
			return false
		}
		if s.strict {
			if reason := Validate(n); reason != "" {
				s.err = fmt.Errorf("corpus: line %d: %s", s.lineNo, reason)
				return false
			}
		}
		s.rec = Record{Index: s.count, N: n, Line: s.lineNo}
		s.count++
		return true
	}
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("corpus: %w", err)
	}
	return false
}

// Record returns the record produced by the last successful Next.
func (s *Source) Record() Record { return s.rec }

// Err returns the first error encountered, or nil at clean end of input.
func (s *Source) Err() error { return s.err }

// Skipped returns the records that yielded no modulus so far, with
// per-record reasons. Grows as PEM input is sniffed; complete once Next
// has returned false.
func (s *Source) Skipped() []Skip { return s.skips }

// Count returns the number of records yielded so far.
func (s *Source) Count() int { return s.count }
