// Package corpus reads and writes modulus corpora: the on-disk interchange
// format between the key generator (cmd/keygen) and the attack tool
// (cmd/rsafactor), standing in for the paper's "encryption keys collected
// from the Web".
//
// The format is line-oriented text:
//
//	# any number of comment lines
//	<modulus in lowercase hex>
//	<modulus in lowercase hex>
//	...
//
// Blank lines are ignored. The format carries only public information
// (moduli), like a real collected-key corpus would.
package corpus

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"bulkgcd/internal/mpnat"
)

// Write serializes moduli to w, one hex modulus per line, preceded by a
// descriptive comment header.
func Write(w io.Writer, moduli []*mpnat.Nat, comment string) error {
	bw := bufio.NewWriter(w)
	if comment != "" {
		for _, line := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(bw, "# %s\n", line); err != nil {
				return err
			}
		}
	}
	for i, n := range moduli {
		if n == nil {
			return fmt.Errorf("corpus: modulus %d is nil", i)
		}
		if _, err := fmt.Fprintln(bw, n.Hex()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a corpus from r. It rejects zero and even moduli early so
// the attack layer can assume valid inputs. It is a collecting wrapper
// over Source, so it also accepts PEM streams.
func Read(r io.Reader) ([]*mpnat.Nat, error) {
	return collect(NewSource(r))
}

// ReadLenient parses like Read but keeps zero and even moduli, leaving
// validation to the caller. The bulk engines' quarantine mode reports
// such entries per index instead of failing the whole corpus, which is
// the right trade for large collected key sets with a few corrupt lines.
func ReadLenient(r io.Reader) ([]*mpnat.Nat, error) {
	return collect(NewLenientSource(r))
}

func collect(src *Source) ([]*mpnat.Nat, error) {
	var out []*mpnat.Nat
	for src.Next() {
		out = append(out, src.Record().N)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
