package corpus

import (
	"math/big"
	"strings"
	"testing"

	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/pemkeys"
)

func TestSourceHexStreaming(t *testing.T) {
	in := "# comment\n\nff\n  09  \n# tail\n15\n"
	src := NewSource(strings.NewReader(in))
	var got []string
	var lines []int
	for src.Next() {
		rec := src.Record()
		if rec.Index != len(got) {
			t.Fatalf("record %d has Index %d", len(got), rec.Index)
		}
		if rec.PEM != nil {
			t.Fatal("hex record carries PEM provenance")
		}
		got = append(got, rec.N.Hex())
		lines = append(lines, rec.Line)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "ff,9,15" {
		t.Fatalf("moduli = %v", got)
	}
	if lines[0] != 3 || lines[1] != 4 || lines[2] != 6 {
		t.Fatalf("lines = %v", lines)
	}
	if src.Count() != 3 || len(src.Skipped()) != 0 {
		t.Fatalf("count %d skipped %d", src.Count(), len(src.Skipped()))
	}
}

func TestSourceStrictVsLenient(t *testing.T) {
	in := "ff\n10\n" // 0x10 is even
	src := NewSource(strings.NewReader(in))
	n := 0
	for src.Next() {
		n++
	}
	if err := src.Err(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("strict source: %d records, err %v", n, err)
	}

	src = NewLenientSource(strings.NewReader(in))
	n = 0
	for src.Next() {
		n++
	}
	if src.Err() != nil || n != 2 {
		t.Fatalf("lenient source: %d records, err %v", n, src.Err())
	}
}

func TestSourceBadHexStopsWithLine(t *testing.T) {
	src := NewSource(strings.NewReader("ff\nnot-hex\n"))
	for src.Next() {
	}
	if err := src.Err(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
	// Err is sticky: Next stays false.
	if src.Next() {
		t.Fatal("Next advanced past an error")
	}
}

func TestSourcePEM(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("junk preamble outside any armour\n")
	n1 := new(big.Int).SetInt64(0xC5) // odd
	n2 := new(big.Int).SetInt64(0xE3)
	if err := pemkeys.WritePublicKey(&sb, n1, 65537); err != nil {
		t.Fatal(err)
	}
	sb.WriteString("-----BEGIN GARBAGE-----\nAAAA\n-----END GARBAGE-----\n")
	if err := pemkeys.WritePublicKey(&sb, n2, 3); err != nil {
		t.Fatal(err)
	}

	src := NewSource(strings.NewReader(sb.String()))
	var recs []Record
	for src.Next() {
		recs = append(recs, src.Record())
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].N.Hex() != "c5" || recs[1].N.Hex() != "e3" {
		t.Fatalf("moduli = %s,%s", recs[0].N.Hex(), recs[1].N.Hex())
	}
	if recs[0].PEM == nil || recs[1].PEM == nil || recs[1].PEM.E != 3 {
		t.Fatalf("PEM provenance missing: %+v", recs)
	}
	skips := src.Skipped()
	if len(skips) != 1 || skips[0].Label != "GARBAGE" || skips[0].Reason == "" {
		t.Fatalf("Skipped() = %+v", skips)
	}
}

func TestSourcePEMStrictEven(t *testing.T) {
	var sb strings.Builder
	if err := pemkeys.WritePublicKey(&sb, new(big.Int).SetInt64(0xC4), 65537); err != nil {
		t.Fatal(err)
	}
	src := NewSource(strings.NewReader(sb.String()))
	for src.Next() {
	}
	if err := src.Err(); err == nil || !strings.Contains(err.Error(), "even modulus") {
		t.Fatalf("strict PEM: %v", err)
	}
	src = NewLenientSource(strings.NewReader(sb.String()))
	n := 0
	for src.Next() {
		n++
	}
	if src.Err() != nil || n != 1 {
		t.Fatalf("lenient PEM: %d records, err %v", n, src.Err())
	}
}

func TestValidate(t *testing.T) {
	if r := Validate(mpnat.FromBig(big.NewInt(0))); !strings.Contains(r, "zero") {
		t.Fatalf("zero: %q", r)
	}
	if r := Validate(mpnat.FromBig(big.NewInt(4))); !strings.Contains(r, "even") {
		t.Fatalf("even: %q", r)
	}
	if r := Validate(mpnat.FromBig(big.NewInt(15))); r != "" {
		t.Fatalf("odd: %q", r)
	}
}
