package bulkgcd

// This file is the benchmark harness mandated by DESIGN.md: one bench per
// table and figure of the paper's evaluation. Each benchmark either
// measures the table's quantity directly (ns/GCD for Table V's timing
// cells) or reports it as a custom metric (iterations/GCD for Table IV,
// memory operations and coalescing for the figures), so that
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. cmd/gcdbench and cmd/ummsim print the
// same data as formatted tables.

import (
	"context"
	"math/big"
	"runtime"
	"strconv"
	"testing"

	"bulkgcd/internal/batchgcd"
	"bulkgcd/internal/bulk"
	"bulkgcd/internal/experiments"
	"bulkgcd/internal/gcd"
	"bulkgcd/internal/mpnat"
	"bulkgcd/internal/refgcd"
	"bulkgcd/internal/rsakey"
	"bulkgcd/internal/umm"
)

// ---------------------------------------------------------------------------
// Tables I-III: the paper's worked examples (d = 4 reference algorithms).

func benchPaperExample(b *testing.B, alg refgcd.Algorithm, wantIters int) {
	x := big.NewInt(1043915)
	y := big.NewInt(768955)
	opt := refgcd.Options{WordBits: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := refgcd.Run(alg, x, y, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Iterations != wantIters || res.GCD.Int64() != 5 {
			b.Fatalf("%v: %d iterations (want %d), gcd %v", alg, res.Iterations, wantIters, res.GCD)
		}
	}
	b.ReportMetric(float64(wantIters), "iters/GCD")
}

func BenchmarkTableI_Binary(b *testing.B)        { benchPaperExample(b, refgcd.Binary, 24) }
func BenchmarkTableI_FastBinary(b *testing.B)    { benchPaperExample(b, refgcd.FastBinary, 16) }
func BenchmarkTableII_Original(b *testing.B)     { benchPaperExample(b, refgcd.Original, 11) }
func BenchmarkTableII_Fast(b *testing.B)         { benchPaperExample(b, refgcd.Fast, 8) }
func BenchmarkTableIII_Approximate(b *testing.B) { benchPaperExample(b, refgcd.Approximate, 9) }

// ---------------------------------------------------------------------------
// Shared pair source for the word-level benchmarks.

func benchPairs(b *testing.B, size, n int) ([]*mpnat.Nat, []*mpnat.Nat) {
	b.Helper()
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: 2 * n, Bits: size, Seed: int64(size), Pseudo: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	ms := c.Moduli()
	return ms[:n], ms[n:]
}

// ---------------------------------------------------------------------------
// Table IV: iteration counts. ns/op is the sequential cost per GCD; the
// iters/GCD metric is the table's number.

func benchTableIV(b *testing.B, alg gcd.Algorithm, size int, early bool) {
	const pool = 64
	xs, ys := benchPairs(b, size, pool)
	scratch := gcd.NewScratch(size)
	opt := gcd.Options{}
	if early {
		opt.EarlyBits = size / 2
	}
	totalIters := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := scratch.Compute(alg, xs[i%pool], ys[i%pool], opt)
		totalIters += st.Iterations
	}
	b.ReportMetric(float64(totalIters)/float64(b.N), "iters/GCD")
}

func BenchmarkTableIV_Original1024(b *testing.B)    { benchTableIV(b, gcd.Original, 1024, false) }
func BenchmarkTableIV_Fast1024(b *testing.B)        { benchTableIV(b, gcd.Fast, 1024, false) }
func BenchmarkTableIV_Binary1024(b *testing.B)      { benchTableIV(b, gcd.Binary, 1024, false) }
func BenchmarkTableIV_FastBinary1024(b *testing.B)  { benchTableIV(b, gcd.FastBinary, 1024, false) }
func BenchmarkTableIV_Approximate512(b *testing.B)  { benchTableIV(b, gcd.Approximate, 512, false) }
func BenchmarkTableIV_Approximate1024(b *testing.B) { benchTableIV(b, gcd.Approximate, 1024, false) }
func BenchmarkTableIV_Approximate2048(b *testing.B) { benchTableIV(b, gcd.Approximate, 2048, false) }
func BenchmarkTableIV_Approximate4096(b *testing.B) { benchTableIV(b, gcd.Approximate, 4096, false) }
func BenchmarkTableIV_Approximate1024Early(b *testing.B) {
	benchTableIV(b, gcd.Approximate, 1024, true)
}

// ---------------------------------------------------------------------------
// Table V, CPU columns: sequential time per GCD (early-terminate, the
// paper's recommended mode). ns/op is the table cell.

func benchTableVCPU(b *testing.B, alg gcd.Algorithm, size int) {
	const pool = 64
	xs, ys := benchPairs(b, size, pool)
	scratch := gcd.NewScratch(size)
	opt := gcd.Options{EarlyBits: size / 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Compute(alg, xs[i%pool], ys[i%pool], opt)
	}
}

func BenchmarkTableV_CPU_Binary512(b *testing.B)       { benchTableVCPU(b, gcd.Binary, 512) }
func BenchmarkTableV_CPU_Binary1024(b *testing.B)      { benchTableVCPU(b, gcd.Binary, 1024) }
func BenchmarkTableV_CPU_Binary2048(b *testing.B)      { benchTableVCPU(b, gcd.Binary, 2048) }
func BenchmarkTableV_CPU_Binary4096(b *testing.B)      { benchTableVCPU(b, gcd.Binary, 4096) }
func BenchmarkTableV_CPU_FastBinary512(b *testing.B)   { benchTableVCPU(b, gcd.FastBinary, 512) }
func BenchmarkTableV_CPU_FastBinary1024(b *testing.B)  { benchTableVCPU(b, gcd.FastBinary, 1024) }
func BenchmarkTableV_CPU_FastBinary2048(b *testing.B)  { benchTableVCPU(b, gcd.FastBinary, 2048) }
func BenchmarkTableV_CPU_FastBinary4096(b *testing.B)  { benchTableVCPU(b, gcd.FastBinary, 4096) }
func BenchmarkTableV_CPU_Approximate512(b *testing.B)  { benchTableVCPU(b, gcd.Approximate, 512) }
func BenchmarkTableV_CPU_Approximate1024(b *testing.B) { benchTableVCPU(b, gcd.Approximate, 1024) }
func BenchmarkTableV_CPU_Approximate2048(b *testing.B) { benchTableVCPU(b, gcd.Approximate, 2048) }
func BenchmarkTableV_CPU_Approximate4096(b *testing.B) { benchTableVCPU(b, gcd.Approximate, 4096) }

// ---------------------------------------------------------------------------
// Table V, GPU columns. GPU-par: the host-parallel bulk executor; ns/op is
// wall time per GCD across all workers. GPU-sim: the UMM model; the
// units/GCD metric is the simulated time.

// benchTableVGPUPar times whole all-pairs corpus runs (one per op) and
// reports the per-GCD wall time as the ns/GCD metric - the Table V cell.
func benchTableVGPUPar(b *testing.B, alg gcd.Algorithm, size int) {
	const m = 96 // 4560 pairs per run
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: m, Bits: size, Seed: int64(size), Pseudo: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	moduli := c.Moduli()
	var perGCD float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bulk.AllPairs(moduli, bulk.Config{Algorithm: alg, Early: true})
		if err != nil {
			b.Fatal(err)
		}
		perGCD = float64(res.Elapsed.Nanoseconds()) / float64(res.Pairs)
	}
	b.ReportMetric(perGCD, "ns/GCD")
}

func BenchmarkTableV_GPUPar_Approximate1024(b *testing.B) {
	benchTableVGPUPar(b, gcd.Approximate, 1024)
}
func BenchmarkTableV_GPUPar_FastBinary1024(b *testing.B) {
	benchTableVGPUPar(b, gcd.FastBinary, 1024)
}
func BenchmarkTableV_GPUPar_Binary1024(b *testing.B) {
	benchTableVGPUPar(b, gcd.Binary, 1024)
}

func benchTableVGPUSim(b *testing.B, alg gcd.Algorithm, size int) {
	const p = 64
	xs, ys := benchPairs(b, size, p)
	machine, err := umm.New(32, 200)
	if err != nil {
		b.Fatal(err)
	}
	var units float64
	var coalesced float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bulk.Simulate(machine, alg, xs, ys, true)
		if err != nil {
			b.Fatal(err)
		}
		units = res.TimePerGCD
		coalesced = res.UMM.CoalescedFraction()
	}
	b.ReportMetric(units, "simunits/GCD")
	b.ReportMetric(coalesced, "coalesced")
}

func BenchmarkTableV_GPUSim_Approximate1024(b *testing.B) {
	benchTableVGPUSim(b, gcd.Approximate, 1024)
}
func BenchmarkTableV_GPUSim_FastBinary1024(b *testing.B) {
	benchTableVGPUSim(b, gcd.FastBinary, 1024)
}
func BenchmarkTableV_GPUSim_Binary1024(b *testing.B) {
	benchTableVGPUSim(b, gcd.Binary, 1024)
}

// ---------------------------------------------------------------------------
// Figure 1 / Section IV: memory operations per iteration.

func BenchmarkFig1_MemOpsPerIteration1024(b *testing.B) {
	const pool = 64
	xs, ys := benchPairs(b, 1024, pool)
	scratch := gcd.NewScratch(1024)
	opt := gcd.Options{EarlyBits: 512}
	var ops, iters int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := scratch.Compute(gcd.Approximate, xs[i%pool], ys[i%pool], opt)
		ops += st.MemOps
		iters += int64(st.Iterations)
	}
	b.ReportMetric(float64(ops)/float64(iters), "memops/iter")
	b.ReportMetric(3.0*1024/32, "paper-3s/d")
}

// ---------------------------------------------------------------------------
// Figure 2: the warp-dispatch example; ns/op is simulator overhead, the
// metric asserts the 8-time-unit result.

func BenchmarkFig2_WarpDispatch(b *testing.B) {
	machine, err := umm.New(4, 5)
	if err != nil {
		b.Fatal(err)
	}
	addrs := []int64{0, 5, 9, 2, 12, 13, 14, 15}
	var units int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		units = machine.Batch(addrs).Time
	}
	if units != 8 {
		b.Fatalf("expected 8 time units, got %d", units)
	}
	b.ReportMetric(float64(units), "timeunits")
}

// ---------------------------------------------------------------------------
// Figure 3 / Theorem 1: layout comparison.

func benchFig3(b *testing.B, column bool) {
	const (
		w, l, p, steps, n = 32, 200, 128, 64, 32
	)
	machine, err := umm.New(w, l)
	if err != nil {
		b.Fatal(err)
	}
	idxs := make([]int, steps)
	for i := range idxs {
		idxs[i] = (i * 7) % n
	}
	var units int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		progs := make([]umm.Program, p)
		for j := 0; j < p; j++ {
			if column {
				progs[j] = umm.ColumnProgram(0, p, j, idxs)
			} else {
				progs[j] = umm.RowProgram(0, n, j, idxs)
			}
		}
		units = machine.Run(progs).Time
	}
	b.ReportMetric(float64(units), "timeunits")
	if column {
		if want := machine.ObliviousTime(p, steps); units != want {
			b.Fatalf("Theorem 1 violated: %d != %d", units, want)
		}
	}
}

func BenchmarkFig3_ColumnWise(b *testing.B) { benchFig3(b, true) }
func BenchmarkFig3_RowWise(b *testing.B)    { benchFig3(b, false) }

// ---------------------------------------------------------------------------
// End-to-end: the attack itself (the paper's motivating workload).

func BenchmarkAttack64Keys512(b *testing.B) {
	moduli, _, err := GenerateWeakCorpus(64, 512, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := FindSharedPrimes(moduli, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Broken) != 4 {
			b.Fatalf("broke %d keys", len(rep.Broken))
		}
	}
}

// ---------------------------------------------------------------------------
// Section VII: SIMT branch divergence (the paper's explanation for
// Binary's poor GPU showing). The penalty metrics are the reproduced
// quantities.

func BenchmarkSectionVII_Divergence(b *testing.B) {
	var penaltyC, penaltyE float64
	for i := 0; i < b.N; i++ {
		rs, err := experiments.RunDivergence(32, 4, 512, 64, true, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			switch r.Alg {
			case gcd.Binary:
				penaltyC = r.Penalty
			case gcd.Approximate:
				penaltyE = r.Penalty
			}
		}
	}
	b.ReportMetric(penaltyC, "penaltyC")
	b.ReportMetric(penaltyE, "penaltyE")
}

// ---------------------------------------------------------------------------
// Multicore scaling: the work-stealing pool's speedup-vs-cores gate.
// One op is a full 1/2/4/8-core sweep of the all-pairs engine with
// GOMAXPROCS pinned per point (RunCoreScalingContext also verifies the
// findings are identical at every width). The gate self-enforces a
// >= 1.8x speedup at 4 cores; machines without 4 CPUs skip the gate
// LOUDLY (the log line below is what CI surfaces as an annotation)
// because an oversubscribed 4-goroutine pool on fewer cores measures
// scheduling fairness, not scaling.

func BenchmarkCoreScaling(b *testing.B) {
	cfg := experiments.CoreScalingConfig{
		Cores: []int{1, 2, 4, 8}, Moduli: 96, Bits: 512, Seed: 1,
	}
	var ps []experiments.CoreScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		ps, err = experiments.RunCoreScalingContext(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var steals float64
	for _, p := range ps {
		steals += float64(p.Steals)
		tag := strconv.Itoa(p.Cores) + "c"
		b.ReportMetric(p.NsPerPair, "ns/pair-"+tag)
		b.ReportMetric(p.Speedup, "speedup-"+tag)
		b.ReportMetric(p.Efficiency, "efficiency-"+tag)
	}
	b.ReportMetric(steals, "steals")
	if runtime.NumCPU() < 4 {
		b.Logf("SKIPPED multicore gate: this machine has %d CPUs, the >= 1.8x @ 4 cores bound needs 4; the sweep above ran oversubscribed and its efficiency columns are not a scaling measurement", runtime.NumCPU())
		return
	}
	for _, p := range ps {
		if p.Cores == 4 && p.Speedup < 1.8 {
			b.Fatalf("4-core speedup %.2fx, want >= 1.8x (ns/pair: 1c=%.0f 4c=%.0f, steals=%d)",
				p.Speedup, ps[0].NsPerPair, p.NsPerPair, p.Steals)
		}
	}
}

// ---------------------------------------------------------------------------
// Baseline: Bernstein batch GCD over the same corpus as the all-pairs
// bench (compare ns/GCD-equivalent directly with GPUPar above). Run uses
// a GOMAXPROCS-sized pool, matching GPUPar's default, so this stays
// pool-vs-pool; internal/batchgcd's BenchmarkBatchGCD sweeps pool sizes.

func BenchmarkBaseline_BatchGCD96x1024(b *testing.B) {
	c, err := rsakey.GenerateCorpus(rsakey.CorpusSpec{
		Count: 96, Bits: 1024, Seed: 1024, Pseudo: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	moduli := make([]*big.Int, 96)
	for i, k := range c.Keys {
		moduli[i] = k.N.ToBig()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := batchgcd.Run(moduli); err != nil {
			b.Fatal(err)
		}
	}
}
